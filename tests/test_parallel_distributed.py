"""Tests that the distributed solvers agree with the serial ones.

The central correctness claim of the parallel substrate: running Algorithm 2
or Algorithm 3 over p simulated ranks produces the same results as the serial
implementation (up to floating-point reduction order), for any rank count.
"""

import numpy as np
import pytest

from repro.core.approx_relax import approx_relax
from repro.core.approx_round import approx_round
from repro.core.config import RelaxConfig, RoundConfig
from repro.core.firal import ApproxFIRAL
from repro.parallel.cluster import ScalingMeasurement, SimulatedCluster
from repro.parallel.distributed_relax import distributed_relax
from repro.parallel.distributed_round import distributed_round
from repro.parallel.firal import DistributedApproxFIRAL
from tests.conftest import make_fisher_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_fisher_dataset(seed=30, num_pool=36, num_labeled=8, dimension=4, num_classes=3)


@pytest.fixture(scope="module")
def z_relaxed(dataset):
    rng = np.random.default_rng(0)
    z = rng.uniform(0, 1, size=dataset.num_pool)
    return 6.0 * z / z.sum()


def relax_config(iterations=3):
    return RelaxConfig(max_iterations=iterations, track_objective="none", seed=11)


class TestDistributedRelax:
    @pytest.mark.parametrize("num_ranks", [1, 2, 3, 5])
    def test_matches_serial(self, dataset, num_ranks):
        serial = approx_relax(dataset, budget=6, config=relax_config())
        distributed = distributed_relax(dataset, 6, num_ranks=num_ranks, config=relax_config())
        np.testing.assert_allclose(distributed.weights, serial.weights, rtol=1e-2, atol=1e-4)
        assert distributed.num_ranks == num_ranks

    def test_single_rank_is_numerically_identical(self, dataset):
        serial = approx_relax(dataset, budget=6, config=relax_config())
        distributed = distributed_relax(dataset, 6, num_ranks=1, config=relax_config())
        np.testing.assert_allclose(distributed.weights, serial.weights, rtol=1e-6, atol=1e-9)

    def test_weights_on_scaled_simplex(self, dataset):
        result = distributed_relax(dataset, 6, num_ranks=4, config=relax_config())
        assert np.all(result.weights >= 0)
        assert float(result.weights.sum()) == pytest.approx(6.0, rel=1e-6)

    def test_per_rank_timings_and_comm_log_populated(self, dataset):
        result = distributed_relax(dataset, 6, num_ranks=3, config=relax_config(iterations=1))
        assert "cg" in result.per_rank_seconds
        assert result.per_rank_seconds["cg"].shape == (3,)
        assert result.comm_log.calls["allreduce"] > 0
        assert result.comm_log.calls["bcast"] >= 1
        assert result.compute_seconds() > 0

    def test_objective_tracking_rejected(self, dataset):
        with pytest.raises(ValueError):
            distributed_relax(
                dataset, 6, num_ranks=2, config=RelaxConfig(track_objective="exact")
            )


class TestDistributedRound:
    @pytest.mark.parametrize("num_ranks", [1, 2, 3, 6])
    def test_selects_same_points_as_serial(self, dataset, z_relaxed, num_ranks):
        serial = approx_round(dataset, z_relaxed, budget=5, eta=1.0)
        distributed = distributed_round(dataset, z_relaxed, 5, 1.0, num_ranks=num_ranks)
        np.testing.assert_array_equal(distributed.selected_indices, serial.selected_indices)

    def test_comm_pattern_matches_paper(self, dataset, z_relaxed):
        """Per iteration: one argmax allreduce, bcasts of (x, h), one allgather
        of the eigenvalues — plus the single Sigma_* assembly allreduce."""

        budget = 4
        result = distributed_round(dataset, z_relaxed, budget, 1.0, num_ranks=3)
        calls = result.comm_log.calls
        assert calls["allgather"] == budget
        assert calls["allreduce"] == budget + 1
        assert calls["bcast"] == 2 * budget

    def test_per_rank_timings_populated(self, dataset, z_relaxed):
        result = distributed_round(dataset, z_relaxed, 3, 1.0, num_ranks=2)
        assert result.per_rank_seconds["score"].shape == (2,)
        assert result.compute_seconds() > 0

    def test_invalid_inputs_rejected(self, dataset, z_relaxed):
        with pytest.raises(ValueError):
            distributed_round(dataset, z_relaxed, 0, 1.0, num_ranks=2)
        with pytest.raises(ValueError):
            distributed_round(dataset, np.ones(3), 2, 1.0, num_ranks=2)


class TestDistributedRelaxWarmStart:
    def test_initial_weights_match_serial(self, dataset):
        """The driver slices the warm-start iterate exactly as the serial solver."""

        rng = np.random.default_rng(3)
        z0 = rng.uniform(0.1, 1.0, size=dataset.num_pool)
        serial = approx_relax(dataset, budget=6, config=relax_config(), initial_weights=z0)
        distributed = distributed_relax(
            dataset, 6, num_ranks=1, config=relax_config(), initial_weights=z0
        )
        np.testing.assert_allclose(distributed.weights, serial.weights, rtol=1e-6, atol=1e-9)


class TestDistributedApproxFIRAL:
    """The full RELAX → η → ROUND selector over distributed solvers."""

    def _serial(self, eta=None):
        return ApproxFIRAL(
            RelaxConfig(max_iterations=3, track_objective="none", seed=7),
            RoundConfig(eta=eta, eta_grid=(0.5, 2.0)),
        )

    def _distributed(self, num_ranks, eta=None):
        return DistributedApproxFIRAL(
            RelaxConfig(max_iterations=3, track_objective="none", seed=7),
            RoundConfig(eta=eta, eta_grid=(0.5, 2.0)),
            num_ranks=num_ranks,
        )

    @pytest.mark.parametrize("num_ranks", [1, 2, 3])
    def test_fixed_eta_selects_serial_points(self, dataset, num_ranks):
        serial = self._serial(eta=1.0).select(dataset, 5)
        distributed = self._distributed(num_ranks, eta=1.0).select(dataset, 5)
        np.testing.assert_array_equal(
            distributed.selected_indices, serial.selected_indices
        )

    def test_eta_grid_search_selects_serial_points(self, dataset):
        serial = self._serial().select(dataset, 4)
        distributed = self._distributed(2).select(dataset, 4)
        np.testing.assert_array_equal(
            distributed.selected_indices, serial.selected_indices
        )
        assert distributed.round.eta == serial.round.eta

    def test_objective_tracking_normalized_away(self):
        selector = DistributedApproxFIRAL(RelaxConfig(track_objective="exact"), num_ranks=2)
        assert selector.relax_config.track_objective == "none"

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            DistributedApproxFIRAL(num_ranks=0)
        with pytest.raises(ValueError):
            DistributedApproxFIRAL(num_ranks=2, transport="mpi")


class TestSimulatedCluster:
    def test_relax_measurement_components(self, dataset):
        cluster = SimulatedCluster()
        measurement = cluster.measure_relax_step(dataset, budget=6, num_ranks=3)
        assert measurement.step == "relax"
        assert measurement.num_ranks == 3
        assert "cg" in measurement.measured_compute
        assert measurement.modeled_communication > 0
        assert measurement.theoretical["total"] > 0
        assert measurement.measured_total() > 0
        assert "p=3" in measurement.row()

    def test_round_measurement_components(self, dataset, z_relaxed):
        cluster = SimulatedCluster()
        measurement = cluster.measure_round_step(
            dataset, z_relaxed, eta=1.0, num_ranks=2, budget=2
        )
        assert measurement.step == "round"
        assert "score" in measurement.measured_compute
        assert measurement.theoretical_total() > 0

    def test_strong_scaling_returns_one_measurement_per_rank_count(self, dataset):
        cluster = SimulatedCluster()
        measurements = cluster.strong_scaling(
            lambda: dataset, [1, 2, 4], step="round", budget=1, eta=1.0
        )
        assert [m.num_ranks for m in measurements] == [1, 2, 4]
        assert all(m.num_points == dataset.num_pool for m in measurements)

    def test_weak_scaling_grows_problem(self):
        cluster = SimulatedCluster()

        def factory(total):
            return make_fisher_dataset(seed=1, num_pool=total, num_labeled=6, dimension=4, num_classes=3)

        measurements = cluster.weak_scaling(
            factory, [1, 2], step="round", points_per_rank=12, budget=1, eta=1.0
        )
        assert measurements[0].num_points == 12
        assert measurements[1].num_points == 24

    def test_invalid_step_rejected(self, dataset):
        with pytest.raises(ValueError):
            SimulatedCluster().strong_scaling(lambda: dataset, [1], step="foo")

    def test_scaling_measurement_defaults(self):
        m = ScalingMeasurement(step="relax", num_ranks=1, num_points=10)
        assert m.measured_total() == 0.0
