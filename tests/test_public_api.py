"""The curated public surface: explicit ``__all__``, lazy serve exports,
deprecated ``PointStore`` alias.

Every name a user is told to import must resolve; the serving layer loads
lazily (so ``import repro`` stays cheap for batch scripts) but lands in the
same namespace; the legacy ``PointStore`` alias keeps working on every
historical import path — warning, not breaking.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

import repro
import repro.engine


class TestAllResolves:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_engine_all_resolves(self):
        for name in repro.engine.__all__:
            assert getattr(repro.engine, name) is not None, name

    def test_serving_entry_points_exported(self):
        from repro.serve import AsyncSessionClient, ServeConfig, SessionManager, SessionSpec

        assert repro.SessionManager is SessionManager
        assert repro.AsyncSessionClient is AsyncSessionClient
        assert repro.ServeConfig is ServeConfig
        assert repro.SessionSpec is SessionSpec

    def test_query_proposal_reexported(self):
        from repro.engine.session import QueryProposal

        assert repro.QueryProposal is QueryProposal
        assert repro.engine.QueryProposal is QueryProposal

    def test_import_repro_does_not_load_serve(self):
        """The serving layer must stay off the eager import path."""

        code = "import repro, sys; sys.exit(1 if 'repro.serve' in sys.modules else 0)"
        proc = subprocess.run([sys.executable, "-c", code])
        assert proc.returncode == 0


class TestPointStoreDeprecation:
    @pytest.mark.parametrize(
        "module", ["repro", "repro.engine", "repro.engine.pool"]
    )
    def test_alias_warns_and_resolves(self, module):
        import importlib

        mod = importlib.import_module(module)
        with pytest.warns(DeprecationWarning, match="deprecated alias of DensePointStore"):
            alias = getattr(mod, "PointStore")
        assert alias is repro.DensePointStore

    def test_dense_point_store_does_not_warn(self, recwarn):
        assert repro.DensePointStore is repro.engine.DensePointStore
        deprecations = [w for w in recwarn.list if w.category is DeprecationWarning]
        assert deprecations == []
