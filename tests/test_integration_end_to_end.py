"""End-to-end integration tests across the whole library.

These mirror the paper's experiments at miniature scale: a full multi-round
active-learning run with every selection method on a synthetic CIFAR-10-like
problem, the accuracy ordering the paper reports (FIRAL >= Random on
imbalanced data), and a relax+round+scaling pipeline through the simulated
cluster.
"""

import pytest

from repro import ApproxFIRAL, ExactFIRAL, build_problem, run_active_learning, run_trials
from repro.baselines import EntropyStrategy, FIRALStrategy, KMeansStrategy, RandomStrategy
from repro.core.config import RelaxConfig, RoundConfig
from repro.parallel import SimulatedCluster
from repro.perfmodel import A100_MACHINE, relax_step_model


def approx_strategy():
    return FIRALStrategy(
        ApproxFIRAL(
            RelaxConfig(max_iterations=8, track_objective="none", seed=0),
            RoundConfig(eta=1.0),
        )
    )


@pytest.fixture(scope="module")
def problem():
    return build_problem("cifar10", scale=0.04, seed=1)


@pytest.fixture(scope="module")
def imbalanced_problem():
    return build_problem("imb-cifar10", scale=0.04, seed=1)


class TestFullActiveLearningRuns:
    def test_all_methods_complete_and_reach_reasonable_accuracy(self, problem):
        strategies = [
            RandomStrategy(),
            KMeansStrategy(),
            EntropyStrategy(),
            approx_strategy(),
        ]
        for strategy in strategies:
            result = run_active_learning(
                problem, strategy, num_rounds=2, budget_per_round=10, seed=0
            )
            assert len(result.records) == 3
            assert result.final_eval_accuracy() > 0.4, strategy.name

    def test_firal_competitive_with_random_on_imbalanced_pool(self, imbalanced_problem):
        """Fig. 2(H)/(J): FIRAL holds up under class imbalance where Random
        degrades.  At miniature scale we only assert FIRAL is not worse by a
        margin (averaged over trials for Random)."""

        firal = run_active_learning(
            imbalanced_problem, approx_strategy(), num_rounds=3, budget_per_round=10, seed=0
        )
        random_agg = run_trials(
            imbalanced_problem,
            RandomStrategy,
            num_rounds=3,
            budget_per_round=10,
            num_trials=5,
            seed=0,
        )
        assert firal.final_eval_accuracy() >= random_agg.mean_eval_accuracy()[-1] - 0.05

    def test_exact_and_approx_firal_reach_similar_accuracy(self, problem):
        """The paper's core accuracy claim (Fig. 2): Approx ~= Exact."""

        exact = run_active_learning(
            problem,
            FIRALStrategy(ExactFIRAL(RelaxConfig(max_iterations=8), RoundConfig(eta=1.0))),
            num_rounds=2,
            budget_per_round=10,
            seed=0,
        )
        approx = run_active_learning(
            problem, approx_strategy(), num_rounds=2, budget_per_round=10, seed=0
        )
        assert abs(exact.final_eval_accuracy() - approx.final_eval_accuracy()) < 0.12


class TestScalingPipeline:
    def test_relax_scaling_measurements_have_expected_shape(self):
        from tests.conftest import make_fisher_dataset

        cluster = SimulatedCluster()
        dataset = make_fisher_dataset(seed=2, num_pool=48, num_labeled=8, dimension=4, num_classes=3)
        measurements = cluster.strong_scaling(
            lambda: dataset,
            [1, 2, 4],
            step="relax",
            budget=6,
            relax_config=None,
        )
        assert [m.num_ranks for m in measurements] == [1, 2, 4]
        # Theoretical compute time shrinks with rank count (strong scaling).
        assert measurements[-1].theoretical["cg"] < measurements[0].theoretical["cg"]

    def test_theoretical_model_consistent_with_table_iv_scaling(self):
        """The modeled RELAX time at p ranks is ~1/p of the serial compute plus
        communication — i.e. near-ideal strong scaling as in Fig. 6."""

        kwargs = dict(num_points=1_000_000, dimension=128, num_classes=100, cg_iterations=50)
        serial = relax_step_model(A100_MACHINE, num_ranks=1, **kwargs)
        parallel = relax_step_model(A100_MACHINE, num_ranks=8, **kwargs)
        compute_serial = serial["total"] - serial["communication"]
        compute_parallel = parallel["total"] - parallel["communication"]
        assert compute_parallel == pytest.approx(compute_serial / 8, rel=0.2)


class TestPublicAPI:
    def test_version_and_exports(self):
        import repro

        assert repro.__version__
        for name in ("ApproxFIRAL", "ExactFIRAL", "build_problem", "run_active_learning"):
            assert hasattr(repro, name)

    def test_quickstart_snippet_from_readme(self):
        problem = build_problem("cifar10", scale=0.03, seed=0)
        strategy = FIRALStrategy(
            ApproxFIRAL(RelaxConfig(max_iterations=5, track_objective="none"), RoundConfig(eta=1.0))
        )
        result = run_active_learning(problem, strategy, num_rounds=2, budget_per_round=10)
        assert len(result.records) == 3
        assert "approx-firal" in result.to_table()
