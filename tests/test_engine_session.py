"""Session engine regression suite.

The contract of the engine refactor: with the default (legacy-equivalent)
``SessionConfig``, :class:`repro.engine.ActiveSession` reproduces the
pre-refactor ``run_active_learning`` loop **bit-identically** on the NumPy
backend — same accuracy curves, same selected points — for every strategy.
``_legacy_run`` below is a frozen copy of that pre-refactor loop (extended
only to track stable global ids) and is the reference the session is pinned
against.

Also covered here: the strategy lifecycle protocol (``begin_session`` /
``observe_labels``, the stateless adapter), the ``PointStore`` bookkeeping,
the value-exact ``resident_pool`` mode, the round-1 exactness of
``incremental_fisher``, and the FIRAL RELAX warm start.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.active.experiment import run_active_learning
from repro.active.problem import ActiveLearningProblem
from repro.active.results import ExperimentResult, RoundRecord
from repro.baselines.base import (
    FIRALStrategy,
    LabelObservation,
    SelectionContext,
    SelectionStrategy,
    SessionInfo,
    StatelessStrategyAdapter,
    ensure_lifecycle,
)
from repro.baselines.entropy import EntropyStrategy
from repro.baselines.kmeans import KMeansStrategy
from repro.baselines.random_sampling import RandomStrategy
from repro.core.config import RelaxConfig, RoundConfig
from repro.core.firal import ApproxFIRAL, ExactFIRAL
from repro.datasets.registry import build_problem
from repro.engine.pool import DensePointStore as PointStore
from repro.engine.session import ActiveSession, SessionConfig
from repro.models.logistic_regression import LogisticRegressionClassifier
from repro.models.metrics import accuracy, class_balanced_accuracy
from repro.utils.random import as_generator


# --------------------------------------------------------------------- #
# Frozen pre-refactor driver (reference for bit-identical equivalence)
# --------------------------------------------------------------------- #
def _legacy_run(
    problem,
    strategy,
    *,
    num_rounds,
    budget_per_round,
    classifier=None,
    seed=0,
    record_initial=True,
):
    """The pre-session ``run_active_learning`` loop, verbatim, plus global-id
    tracking so selections can be compared independently of pool reindexing."""

    rng = as_generator(seed)
    clf = classifier if classifier is not None else LogisticRegressionClassifier(problem.num_classes)

    labeled_features = np.asarray(problem.initial_features).copy()
    labeled_labels = np.asarray(problem.initial_labels).copy()
    pool_features = np.asarray(problem.pool_features).copy()
    pool_labels = np.asarray(problem.pool_labels).copy()
    num_initial = labeled_features.shape[0]
    pool_gids = np.arange(num_initial, num_initial + pool_features.shape[0], dtype=np.int64)
    selected_gids = []

    def evaluate(num_labeled):
        pool_acc = (
            accuracy(pool_labels, clf.predict(pool_features)) if pool_features.shape[0] > 0 else 1.0
        )
        eval_pred = clf.predict(problem.eval_features)
        return RoundRecord(
            num_labeled=num_labeled,
            pool_accuracy=pool_acc,
            eval_accuracy=accuracy(problem.eval_labels, eval_pred),
            balanced_eval_accuracy=class_balanced_accuracy(
                problem.eval_labels, eval_pred, problem.num_classes
            ),
        )

    result = ExperimentResult(strategy_name=strategy.name, dataset_name=problem.name)
    clf.fit(labeled_features, labeled_labels)
    if record_initial:
        result.records.append(evaluate(labeled_labels.shape[0]))

    for _ in range(num_rounds):
        pool_probabilities = clf.predict_proba(pool_features)
        labeled_probabilities = clf.predict_proba(labeled_features)
        context = SelectionContext(
            pool_features=pool_features,
            pool_probabilities=pool_probabilities,
            labeled_features=labeled_features,
            labeled_probabilities=labeled_probabilities,
            budget=budget_per_round,
            rng=rng,
        )
        selected = np.asarray(strategy.select(context), dtype=np.int64)
        selected_gids.extend(int(g) for g in pool_gids[selected])

        labeled_features = np.concatenate([labeled_features, pool_features[selected]], axis=0)
        labeled_labels = np.concatenate([labeled_labels, pool_labels[selected]], axis=0)
        keep = np.ones(pool_features.shape[0], dtype=bool)
        keep[selected] = False
        pool_features = pool_features[keep]
        pool_labels = pool_labels[keep]
        pool_gids = pool_gids[keep]

        clf.fit(labeled_features, labeled_labels)
        result.records.append(evaluate(labeled_labels.shape[0]))

    return result, np.asarray(selected_gids, dtype=np.int64)


def _small_problem(seed=0, num_classes=3, dimension=5, pool_per_class=20, eval_per_class=12):
    """Gaussian-blob problem small enough for ExactFIRAL in a test."""

    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_classes, dimension)) * 3.0

    def draw(per_class):
        feats, labels = [], []
        for k in range(num_classes):
            feats.append(centers[k] + rng.standard_normal((per_class, dimension)))
            labels.append(np.full(per_class, k, dtype=np.int64))
        return np.concatenate(feats), np.concatenate(labels)

    init_f, init_y = draw(2)
    pool_f, pool_y = draw(pool_per_class)
    eval_f, eval_y = draw(eval_per_class)
    return ActiveLearningProblem(
        initial_features=init_f,
        initial_labels=init_y,
        pool_features=pool_f,
        pool_labels=pool_y,
        eval_features=eval_f,
        eval_labels=eval_y,
        num_classes=num_classes,
        name="blobs",
    )


def _approx_firal_strategy():
    return FIRALStrategy(
        ApproxFIRAL(RelaxConfig(max_iterations=6, seed=0), RoundConfig(eta=1.0))
    )


def _exact_firal_strategy():
    return FIRALStrategy(
        ExactFIRAL(RelaxConfig(max_iterations=4, track_objective="exact"), RoundConfig(eta=1.0))
    )


STRATEGY_FACTORIES = {
    "random": RandomStrategy,
    "entropy": EntropyStrategy,
    "kmeans": KMeansStrategy,
    "approx-firal": _approx_firal_strategy,
    "exact-firal": _exact_firal_strategy,
}


@pytest.fixture(scope="module")
def problem():
    return _small_problem(seed=0)


@pytest.fixture(scope="module")
def cifar_problem():
    return build_problem("cifar10", scale=0.03, seed=0)


def _assert_curves_identical(a: ExperimentResult, b: ExperimentResult):
    np.testing.assert_array_equal(a.num_labeled(), b.num_labeled())
    np.testing.assert_array_equal(a.pool_accuracy(), b.pool_accuracy())
    np.testing.assert_array_equal(a.eval_accuracy(), b.eval_accuracy())
    np.testing.assert_array_equal(a.balanced_eval_accuracy(), b.balanced_eval_accuracy())


class TestLegacyEquivalence:
    """Default-config session == frozen pre-refactor driver, bit for bit."""

    @pytest.mark.parametrize("name", sorted(STRATEGY_FACTORIES))
    def test_bit_identical_curves_and_ids(self, problem, name):
        factory = STRATEGY_FACTORIES[name]
        legacy_result, legacy_gids = _legacy_run(
            problem, factory(), num_rounds=3, budget_per_round=4, seed=7
        )

        session = ActiveSession(
            problem, factory(), budget_per_round=4, num_rounds=3, seed=7
        )
        session_result = session.run(3)
        session_gids = session.store.labeled_ids[problem.initial_size:]

        _assert_curves_identical(legacy_result, session_result)
        np.testing.assert_array_equal(legacy_gids, session_gids)

    def test_wrapper_matches_legacy_on_cifar(self, cifar_problem):
        legacy_result, legacy_gids = _legacy_run(
            cifar_problem, RandomStrategy(), num_rounds=3, budget_per_round=10, seed=0
        )
        wrapper_result = run_active_learning(
            cifar_problem, RandomStrategy(), num_rounds=3, budget_per_round=10, seed=0
        )
        _assert_curves_identical(legacy_result, wrapper_result)

    def test_resident_pool_is_value_exact(self, problem):
        """resident_pool only moves arrays (promotion is exact): same bits."""

        base = ActiveSession(
            problem, _approx_firal_strategy(), budget_per_round=4, num_rounds=3, seed=1
        ).run(3)
        resident = ActiveSession(
            problem,
            _approx_firal_strategy(),
            budget_per_round=4,
            num_rounds=3,
            seed=1,
            config=SessionConfig(resident_pool=True),
        )
        resident_result = resident.run(3)
        _assert_curves_identical(base, resident_result)

    def test_incremental_fisher_first_round_exact(self, problem):
        """Acquisition-time probs == current probs in round 1, so the first
        selection matches the exact mode bit-identically."""

        compat = ActiveSession(
            problem, _approx_firal_strategy(), budget_per_round=4, num_rounds=1, seed=2
        )
        compat.run(1)
        incremental = ActiveSession(
            problem,
            _approx_firal_strategy(),
            budget_per_round=4,
            num_rounds=1,
            seed=2,
            config=SessionConfig(incremental_fisher=True),
        )
        incremental.run(1)
        np.testing.assert_array_equal(
            compat.store.labeled_ids, incremental.store.labeled_ids
        )


class TestSessionAPI:
    def test_step_returns_records_and_advances(self, problem):
        session = ActiveSession(problem, RandomStrategy(), budget_per_round=5, seed=0)
        session.record_initial()
        before_pool = session.pool_size
        record = session.step()
        assert session.round_index == 1
        assert session.pool_size == before_pool - 5
        assert session.num_labeled == problem.initial_size + 5
        assert record.num_labeled == problem.initial_size + 5
        assert record.setup_seconds >= 0.0 and record.selection_seconds >= 0.0

    def test_setup_seconds_recorded_per_round(self, problem):
        result = ActiveSession(
            problem, EntropyStrategy(), budget_per_round=4, num_rounds=2, seed=0
        ).run(2)
        # Initial record carries zero setup; every round records a real timing.
        assert result.records[0].setup_seconds == 0.0
        assert all(r.setup_seconds > 0.0 for r in result.records[1:])

    def test_initial_record_only_once(self, problem):
        session = ActiveSession(problem, RandomStrategy(), budget_per_round=4, seed=0)
        session.record_initial()
        with pytest.raises(ValueError):
            session.record_initial()

    def test_budget_exceeding_pool_rejected(self, problem):
        with pytest.raises(ValueError):
            ActiveSession(
                problem, RandomStrategy(), budget_per_round=1000, num_rounds=100, seed=0
            )

    def test_open_ended_run_requires_rounds(self, problem):
        session = ActiveSession(problem, RandomStrategy(), budget_per_round=4, seed=0)
        with pytest.raises(ValueError):
            session.run()

    def test_reproducible_with_same_seed(self, problem):
        a = ActiveSession(problem, RandomStrategy(), budget_per_round=4, num_rounds=2, seed=3).run(2)
        b = ActiveSession(problem, RandomStrategy(), budget_per_round=4, num_rounds=2, seed=3).run(2)
        _assert_curves_identical(a, b)


class _RecordingStrategy(SelectionStrategy):
    name = "recording"

    def __init__(self):
        self.infos = []
        self.observations = []

    def begin_session(self, info: SessionInfo) -> None:
        self.infos.append(info)

    def select(self, context: SelectionContext) -> np.ndarray:
        assert context.pool_ids is not None and context.round_index is not None
        return self._validate_selection(np.arange(context.budget), context)

    def observe_labels(self, observation: LabelObservation) -> None:
        self.observations.append(observation)


class _BareSelector:
    """Duck-typed strategy without the lifecycle protocol."""

    name = "bare"

    def select(self, context):
        return np.arange(context.budget)


class TestLifecycleProtocol:
    def test_hooks_called_in_order(self, problem):
        strategy = _RecordingStrategy()
        ActiveSession(problem, strategy, budget_per_round=3, num_rounds=2, seed=0).run(2)
        assert len(strategy.infos) == 1
        info = strategy.infos[0]
        assert info.num_classes == problem.num_classes
        assert info.dimension == problem.dimension
        assert info.budget_per_round == 3
        assert info.num_rounds == 2
        assert len(strategy.observations) == 2
        first = strategy.observations[0]
        assert first.round_index == 0
        np.testing.assert_array_equal(first.pool_indices, [0, 1, 2])
        # Global pool ids start after the initial labeled block.
        np.testing.assert_array_equal(first.global_ids, problem.initial_size + np.arange(3))
        np.testing.assert_array_equal(
            first.labels, np.asarray(problem.pool_labels)[:3]
        )

    def test_bare_object_wrapped_by_adapter(self, problem):
        adapted = ensure_lifecycle(_BareSelector())
        assert isinstance(adapted, StatelessStrategyAdapter)
        assert adapted.name == "bare"
        result = ActiveSession(
            problem, _BareSelector(), budget_per_round=3, num_rounds=1, seed=0
        ).run(1)
        assert result.strategy_name == "bare"
        assert len(result.records) == 2

    def test_lifecycle_strategy_passes_through(self):
        strategy = RandomStrategy()
        assert ensure_lifecycle(strategy) is strategy


class TestRelaxWarmStart:
    def test_warm_start_state_threads_across_rounds(self, problem):
        strategy = _approx_firal_strategy()
        session = ActiveSession(
            problem,
            strategy,
            budget_per_round=4,
            num_rounds=3,
            seed=0,
            config=SessionConfig(relax_warm_start=True),
        )
        result = session.run(3)
        assert strategy._previous is not None
        prev_ids, prev_weights = strategy._previous
        np.testing.assert_array_equal(prev_ids, np.sort(prev_ids))
        assert prev_weights.shape == prev_ids.shape
        assert np.all(prev_weights >= 0.0)
        # All selected ids distinct across rounds.
        gids = session.store.labeled_ids
        assert np.unique(gids).size == gids.size
        assert len(result.records) == 4

    def test_warm_start_stays_cold_without_pool_ids(self, problem):
        """Under the id-less legacy context the strategy must not warm-start."""

        strategy = FIRALStrategy(
            ApproxFIRAL(RelaxConfig(max_iterations=6, seed=0), RoundConfig(eta=1.0)),
            warm_start=True,
        )
        legacy_result, _ = _legacy_run(problem, strategy, num_rounds=2, budget_per_round=4, seed=0)
        assert strategy._previous is None  # never armed without ids
        assert len(legacy_result.records) == 3

    def test_explicit_flag_overrides_session(self, problem):
        strategy = FIRALStrategy(
            ApproxFIRAL(RelaxConfig(max_iterations=6, seed=0), RoundConfig(eta=1.0)),
            warm_start=False,
        )
        ActiveSession(
            problem,
            strategy,
            budget_per_round=4,
            num_rounds=2,
            seed=0,
            config=SessionConfig(relax_warm_start=True),
        ).run(2)
        assert not strategy._warm_start_active


class TestEtaReuse:
    def _grid_strategy(self, **kw):
        return FIRALStrategy(
            ApproxFIRAL(
                RelaxConfig(max_iterations=5, seed=0),
                RoundConfig(eta_grid=(0.5, 1.0, 2.0)),
            ),
            **kw,
        )

    def test_first_round_searches_then_reuses(self, problem):
        strategy = self._grid_strategy()
        session = ActiveSession(
            problem,
            strategy,
            budget_per_round=4,
            num_rounds=3,
            seed=0,
            config=SessionConfig(reuse_eta=True),
        )
        session.step()
        first_eta = strategy.last_result.round.eta
        assert strategy._previous_eta == first_eta
        # Later rounds skip the grid: eta_score is only computed by the grid
        # search, so a reused-η round leaves it unset.
        session.step()
        assert strategy.last_result.round.eta == first_eta
        assert strategy.last_result.round.eta_score is None

    def test_off_by_default_keeps_searching(self, problem):
        strategy = self._grid_strategy()
        ActiveSession(
            problem, strategy, budget_per_round=4, num_rounds=2, seed=0
        ).run(2)
        assert strategy._previous_eta is None
        assert strategy.last_result.round.eta_score is not None

    def test_fast_config_enables_reuse_and_residency(self):
        cfg = SessionConfig.fast()
        assert cfg.reuse_eta and cfg.resident_pool
        # Measured counterproductive at the benchmark scale; stay opt-in.
        assert not cfg.relax_warm_start and not cfg.incremental_fisher


class TestPointStore:
    def test_ids_and_views(self):
        store = PointStore(
            np.arange(6, dtype=np.float64).reshape(3, 2),
            np.array([0, 1, 2]),
            np.arange(8, dtype=np.float64).reshape(4, 2) + 100,
            np.array([0, 1, 0, 1]),
        )
        assert store.total_points == 7
        assert store.num_initial == 3
        np.testing.assert_array_equal(store.pool_ids, [3, 4, 5, 6])
        np.testing.assert_array_equal(store.labeled_ids, [0, 1, 2])
        np.testing.assert_array_equal(store.pool_features_host()[0], [100, 101])

    def test_label_moves_points_in_selection_order(self):
        store = PointStore(
            np.zeros((2, 2)),
            np.array([0, 1]),
            np.arange(10, dtype=np.float64).reshape(5, 2),
            np.array([1, 0, 1, 0, 1]),
        )
        gids, labels = store.label(np.array([3, 0]))
        np.testing.assert_array_equal(gids, [5, 2])
        np.testing.assert_array_equal(labels, [0, 1])
        np.testing.assert_array_equal(store.labeled_ids, [0, 1, 5, 2])
        np.testing.assert_array_equal(store.pool_ids, [3, 4, 6])
        # Remaining pool rows keep their original relative order.
        np.testing.assert_array_equal(store.pool_features_host()[:, 0], [2, 4, 8])

    def test_label_rejects_bad_indices(self):
        store = PointStore(
            np.zeros((1, 2)), np.array([0]), np.ones((3, 2)), np.array([0, 0, 0])
        )
        with pytest.raises(ValueError):
            store.label(np.array([3]))
        with pytest.raises(ValueError):
            store.label(np.array([0, 0]))

    def test_compute_features_matches_host_values(self):
        store = PointStore(
            np.zeros((1, 3)),
            np.array([0]),
            np.random.default_rng(0).standard_normal((4, 3)).astype(np.float32),
            np.zeros(4, dtype=np.int64),
        )
        view = store.compute_features(store.pool_ids)
        np.testing.assert_array_equal(
            np.asarray(view, dtype=np.float64), store.pool_features_host().astype(np.float64)
        )


# --------------------------------------------------------------------- #
# Multi-rank selection (SessionConfig.parallel_ranks)
# --------------------------------------------------------------------- #
def _parallel_capable_strategy():
    """ApproxFIRAL with the distributed solvers' configuration contract.

    The distributed RELAX solver runs a fixed iteration budget without
    objective tracking, so the serial reference uses ``track_objective="none"``
    too — that is the documented equivalence contract of
    ``SessionConfig.parallel_ranks``.
    """

    return FIRALStrategy(
        ApproxFIRAL(
            RelaxConfig(max_iterations=4, track_objective="none", seed=0),
            RoundConfig(eta=1.0),
        )
    )


def _run_session(problem, config):
    session = ActiveSession(
        problem,
        _parallel_capable_strategy(),
        budget_per_round=4,
        num_rounds=3,
        seed=0,
        config=config,
    )
    result = session.run()
    return (
        [record.eval_accuracy for record in result.records],
        session.store.labeled_ids.copy(),
    )


class TestParallelSession:
    def test_simulated_parallel_session_matches_serial(self, problem):
        """A whole FIRAL session over 2 simulated ranks selects identically."""

        serial_curve, serial_ids = _run_session(problem, SessionConfig())
        parallel_curve, parallel_ids = _run_session(problem, SessionConfig(parallel_ranks=2))
        assert parallel_curve == serial_curve
        np.testing.assert_array_equal(parallel_ids, serial_ids)

    @pytest.mark.multiprocess
    def test_shared_memory_parallel_session_matches_serial(self, problem):
        """A whole FIRAL session runs its selection across real OS processes."""

        serial_curve, serial_ids = _run_session(problem, SessionConfig())
        parallel_curve, parallel_ids = _run_session(
            problem, SessionConfig(parallel_ranks=2, parallel_transport="shared_memory")
        )
        assert parallel_curve == serial_curve
        np.testing.assert_array_equal(parallel_ids, serial_ids)

    def test_parallel_ranks_rejects_exact_firal(self, problem):
        """Exact-FIRAL has no distributed formulation; fail at session start."""

        with pytest.raises(ValueError, match="ApproxFIRAL"):
            ActiveSession(
                problem,
                _exact_firal_strategy(),
                budget_per_round=4,
                num_rounds=2,
                seed=0,
                config=SessionConfig(parallel_ranks=2),
            )

    def test_parallel_ranks_ignored_by_baselines(self, problem):
        """Non-FIRAL strategies ignore the request, like relax_warm_start."""

        session = ActiveSession(
            problem,
            RandomStrategy(),
            budget_per_round=4,
            num_rounds=2,
            seed=0,
            config=SessionConfig(parallel_ranks=2),
        )
        result = session.run()
        assert len(result.records) == 3  # initial + 2 rounds

    def test_invalid_parallel_ranks_rejected(self, problem):
        with pytest.raises(ValueError):
            ActiveSession(
                problem,
                _parallel_capable_strategy(),
                budget_per_round=4,
                num_rounds=2,
                seed=0,
                config=SessionConfig(parallel_ranks=0),
            )
