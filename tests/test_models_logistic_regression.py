"""Tests for the multinomial logistic-regression classifier."""

import numpy as np
import pytest

from repro.models.logistic_regression import LogisticRegressionClassifier


def make_separable_data(seed=0, n_per_class=30, num_classes=3, dimension=4):
    rng = np.random.default_rng(seed)
    means = np.eye(num_classes, dimension) * 5.0
    X, y = [], []
    for k in range(num_classes):
        X.append(means[k] + rng.standard_normal((n_per_class, dimension)) * 0.5)
        y.append(np.full(n_per_class, k))
    return np.concatenate(X), np.concatenate(y)


class TestFitPredict:
    def test_learns_separable_data(self):
        X, y = make_separable_data()
        clf = LogisticRegressionClassifier(num_classes=3)
        clf.fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_predict_proba_rows_sum_to_one(self):
        X, y = make_separable_data()
        clf = LogisticRegressionClassifier(num_classes=3).fit(X, y)
        probs = clf.predict_proba(X)
        assert probs.shape == (X.shape[0], 3)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-8)

    def test_predict_matches_argmax_of_proba(self):
        X, y = make_separable_data(seed=1)
        clf = LogisticRegressionClassifier(num_classes=3).fit(X, y)
        np.testing.assert_array_equal(clf.predict(X), np.argmax(clf.predict_proba(X), axis=1))

    def test_predicts_all_classes_even_if_absent_from_training(self):
        """Active learning can start with missing classes; the probability
        vector must still span all c classes."""

        X, y = make_separable_data()
        mask = y != 2
        clf = LogisticRegressionClassifier(num_classes=3).fit(X[mask], y[mask])
        probs = clf.predict_proba(X)
        assert probs.shape[1] == 3

    def test_regularization_shrinks_weights(self):
        X, y = make_separable_data()
        weak = LogisticRegressionClassifier(num_classes=3, l2_regularization=1e-6).fit(X, y)
        strong = LogisticRegressionClassifier(num_classes=3, l2_regularization=100.0).fit(X, y)
        assert np.linalg.norm(strong.weights_) < np.linalg.norm(weak.weights_)

    def test_training_reduces_loss_vs_zero_weights(self):
        X, y = make_separable_data(seed=2)
        clf = LogisticRegressionClassifier(num_classes=3).fit(X, y)
        assert clf.final_loss_ < np.log(3.0)

    def test_sample_weight_changes_fit(self):
        X, y = make_separable_data(seed=3)
        w = np.ones(len(y))
        w[y == 0] = 100.0
        a = LogisticRegressionClassifier(num_classes=3, warm_start=False).fit(X, y)
        b = LogisticRegressionClassifier(num_classes=3, warm_start=False).fit(X, y, sample_weight=w)
        assert not np.allclose(a.weights_, b.weights_)

    def test_without_intercept(self):
        X, y = make_separable_data()
        clf = LogisticRegressionClassifier(num_classes=3, fit_intercept=False).fit(X, y)
        assert clf.weights_.shape == (X.shape[1], 3)
        assert clf.score(X, y) > 0.9

    def test_with_intercept_weight_shape(self):
        X, y = make_separable_data()
        clf = LogisticRegressionClassifier(num_classes=3).fit(X, y)
        assert clf.weights_.shape == (X.shape[1] + 1, 3)

    def test_warm_start_reuses_weights(self):
        X, y = make_separable_data()
        clf = LogisticRegressionClassifier(num_classes=3, warm_start=True).fit(X, y)
        first = clf.weights_.copy()
        clf.fit(X, y)
        # With a warm start from the optimum the second fit barely moves.
        assert np.linalg.norm(clf.weights_ - first) < 1.0

    def test_decision_function_shape(self):
        X, y = make_separable_data()
        clf = LogisticRegressionClassifier(num_classes=3).fit(X, y)
        assert clf.decision_function(X).shape == (X.shape[0], 3)

    def test_clone_is_unfitted_with_same_hyperparameters(self):
        clf = LogisticRegressionClassifier(num_classes=4, l2_regularization=0.5)
        clone = clf.clone()
        assert clone.weights_ is None
        assert clone.num_classes == 4
        assert clone.l2_regularization == 0.5


class TestValidation:
    def test_unfitted_predict_raises(self):
        clf = LogisticRegressionClassifier(num_classes=3)
        with pytest.raises(RuntimeError):
            clf.predict(np.zeros((2, 3)))

    def test_invalid_num_classes(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier(num_classes=1)

    def test_feature_dimension_mismatch_on_predict(self):
        X, y = make_separable_data()
        clf = LogisticRegressionClassifier(num_classes=3).fit(X, y)
        with pytest.raises(ValueError):
            clf.predict(np.zeros((2, X.shape[1] + 1)))

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier(num_classes=2).fit(np.zeros((3, 2)), np.zeros(4, dtype=int))
