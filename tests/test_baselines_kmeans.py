"""Tests for the K-Means implementation and selection strategy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.kmeans import KMeansStrategy, kmeans, kmeans_plus_plus_init
from tests.test_baselines import make_context


def make_blobs(seed=0, k=3, per_cluster=30, d=2, spread=0.3):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((k, d)) * 10.0
    X = np.concatenate([centers[i] + spread * rng.standard_normal((per_cluster, d)) for i in range(k)])
    labels = np.repeat(np.arange(k), per_cluster)
    return X, labels, centers


class TestKMeansPlusPlus:
    def test_returns_k_centroids_from_data(self):
        X, _, _ = make_blobs()
        centroids = kmeans_plus_plus_init(X, 3, rng=0)
        assert centroids.shape == (3, 2)
        # Every centroid is one of the input points.
        for centroid in centroids:
            assert np.any(np.all(np.isclose(X, centroid), axis=1))

    def test_duplicate_points_handled(self):
        X = np.ones((10, 3))
        centroids = kmeans_plus_plus_init(X, 4, rng=0)
        assert centroids.shape == (4, 3)

    def test_invalid_k_rejected(self):
        X = np.zeros((5, 2))
        with pytest.raises(ValueError):
            kmeans_plus_plus_init(X, 6)


class TestKMeans:
    def test_recovers_well_separated_clusters(self):
        X, labels, centers = make_blobs(seed=1)
        result = kmeans(X, 3, rng=0)
        # Each true cluster should be internally consistent under the fit.
        for k in range(3):
            cluster_assignments = result.labels[labels == k]
            majority = np.bincount(cluster_assignments).max()
            assert majority / len(cluster_assignments) > 0.95

    def test_inertia_nonincreasing_vs_single_iteration(self):
        X, _, _ = make_blobs(seed=2)
        one = kmeans(X, 3, rng=0, max_iterations=1)
        many = kmeans(X, 3, rng=0, max_iterations=50)
        assert many.inertia <= one.inertia + 1e-9

    def test_k_equals_n_gives_zero_inertia(self):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((6, 2))
        result = kmeans(X, 6, rng=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_explicit_initialization(self):
        X, _, centers = make_blobs(seed=4)
        result = kmeans(X, 3, initial_centroids=centers)
        assert result.converged

    def test_labels_within_range(self):
        X, _, _ = make_blobs(seed=5)
        result = kmeans(X, 4, rng=0)
        assert set(np.unique(result.labels)).issubset(set(range(4)))

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 0)

    def test_wrong_initial_centroid_shape_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 2, initial_centroids=np.zeros((2, 3)))


class TestKMeansStrategy:
    def test_returns_budget_unique_indices(self):
        context = make_context(seed=6)
        indices = KMeansStrategy().select(context)
        assert len(indices) == context.budget
        assert len(np.unique(indices)) == context.budget

    def test_selects_one_representative_per_blob(self):
        """With budget == number of well-separated blobs, the selection should
        hit every blob — the diversity property K-Means brings over Random."""

        X, labels, _ = make_blobs(seed=7, k=5, per_cluster=20)
        rng = np.random.default_rng(0)
        from tests.conftest import random_probabilities

        context_kwargs = dict(
            pool_features=X,
            pool_probabilities=random_probabilities(rng, X.shape[0], 3),
            labeled_features=rng.standard_normal((3, 2)),
            labeled_probabilities=random_probabilities(rng, 3, 3),
            budget=5,
            rng=np.random.default_rng(1),
        )
        from repro.baselines.base import SelectionContext

        indices = KMeansStrategy().select(SelectionContext(**context_kwargs))
        assert len(set(labels[indices].tolist())) == 5

    def test_is_stochastic_flag(self):
        assert KMeansStrategy.is_stochastic is True


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=40),
    k=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_kmeans_partitions_all_points(n, k, seed):
    rng = np.random.default_rng(seed)
    k = min(k, n)
    X = rng.standard_normal((n, 3))
    result = kmeans(X, k, rng=seed)
    assert result.labels.shape == (n,)
    assert result.centroids.shape == (k, 3)
    assert result.inertia >= 0.0
