"""Tests for data partitioning across ranks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.partition import (
    block_partition,
    check_pool_offsets,
    partition_indices,
    partition_pool,
    pool_offsets,
)
from tests.conftest import make_fisher_dataset


class TestBlockPartition:
    def test_covers_range_without_overlap(self):
        slices = block_partition(10, 3)
        indices = np.concatenate([np.arange(s.start, s.stop) for s in slices])
        np.testing.assert_array_equal(indices, np.arange(10))

    def test_sizes_differ_by_at_most_one(self):
        slices = block_partition(11, 4)
        sizes = [s.stop - s.start for s in slices]
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_items_gives_empty_slices(self):
        slices = block_partition(2, 5)
        sizes = [s.stop - s.start for s in slices]
        assert sum(sizes) == 2
        assert sizes.count(0) == 3

    def test_single_part(self):
        assert block_partition(7, 1) == [slice(0, 7)]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            block_partition(-1, 2)
        with pytest.raises(ValueError):
            block_partition(5, 0)


class TestPartitionIndices:
    def test_matches_block_partition(self):
        parts = partition_indices(9, 2)
        np.testing.assert_array_equal(parts[0], np.arange(5))
        np.testing.assert_array_equal(parts[1], np.arange(5, 9))


class TestPartitionPool:
    def test_shards_cover_pool_in_order(self):
        dataset = make_fisher_dataset(seed=0, num_pool=23)
        shards = partition_pool(dataset, 4)
        assert sum(s.num_pool for s in shards) == 23
        reassembled = np.concatenate([s.pool_features for s in shards])
        np.testing.assert_array_equal(reassembled, dataset.pool_features)

    def test_labeled_set_replicated(self):
        dataset = make_fisher_dataset(seed=1, num_pool=12)
        shards = partition_pool(dataset, 3)
        for shard in shards:
            np.testing.assert_array_equal(shard.labeled_features, dataset.labeled_features)

    def test_too_many_ranks_rejected(self):
        dataset = make_fisher_dataset(seed=2, num_pool=5)
        with pytest.raises(ValueError):
            partition_pool(dataset, 6)


class TestExplicitOffsets:
    """Shard-aware scatter: a sharded store's ownership table overrides the
    balanced default split."""

    def test_partition_follows_explicit_boundaries(self):
        dataset = make_fisher_dataset(seed=3, num_pool=10)
        offsets = np.array([0, 7, 10])
        shards = partition_pool(dataset, 2, offsets=offsets)
        assert [s.num_pool for s in shards] == [7, 3]
        np.testing.assert_array_equal(shards[0].pool_features, dataset.pool_features[:7])
        np.testing.assert_array_equal(shards[1].pool_features, dataset.pool_features[7:])

    def test_pool_offsets_passthrough_and_default(self):
        np.testing.assert_array_equal(pool_offsets(10, 2), [0, 5, 10])
        np.testing.assert_array_equal(pool_offsets(10, 2, np.array([0, 3, 10])), [0, 3, 10])

    def test_invalid_offsets_rejected(self):
        for bad in ([1, 5, 10], [0, 5, 9], [0, 5, 5, 10], [0, 6, 4, 10]):
            with pytest.raises(ValueError):
                check_pool_offsets(np.asarray(bad), 10, len(bad) - 1)

    def test_wrong_rank_count_rejected(self):
        with pytest.raises(ValueError):
            check_pool_offsets(np.array([0, 5, 10]), 10, 3)


@settings(max_examples=30, deadline=None)
@given(
    total=st.integers(min_value=0, max_value=200),
    parts=st.integers(min_value=1, max_value=16),
)
def test_property_block_partition_is_a_partition(total, parts):
    slices = block_partition(total, parts)
    assert len(slices) == parts
    covered = []
    for s in slices:
        assert 0 <= s.start <= s.stop <= total
        covered.extend(range(s.start, s.stop))
    assert covered == list(range(total))
