"""Tests for the η grid search (§ IV-A selection rule)."""

import numpy as np
import pytest

from repro.core.approx_round import approx_round, selected_batch_min_eigenvalue
from repro.core.config import RoundConfig
from repro.core.eta_selection import default_eta_grid, select_eta
from tests.conftest import make_fisher_dataset


@pytest.fixture
def dataset():
    return make_fisher_dataset(seed=12, num_pool=25, num_labeled=6, dimension=3, num_classes=3)


@pytest.fixture
def z_relaxed(dataset):
    rng = np.random.default_rng(2)
    z = rng.uniform(0, 1, size=dataset.num_pool)
    return 4.0 * z / z.sum()


class TestDefaultGrid:
    def test_contains_theoretical_scale(self):
        grid = default_eta_grid(100)
        assert 8.0 * np.sqrt(100) in grid

    def test_all_positive(self):
        assert all(e > 0 for e in default_eta_grid(36))

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            default_eta_grid(0)


class TestSelectEta:
    def test_returns_best_scoring_eta(self, dataset, z_relaxed):
        grid = (0.1, 1.0, 10.0)
        result, score = select_eta(
            approx_round, dataset, z_relaxed, budget=4, eta_grid=grid, config=RoundConfig()
        )
        assert result.eta in grid
        # The reported score must equal the recomputed score of the winner and
        # be at least as good as every other grid point's score.
        assert score == pytest.approx(
            selected_batch_min_eigenvalue(dataset, result.selected_indices)
        )
        for eta in grid:
            other = approx_round(dataset, z_relaxed, 4, eta, RoundConfig())
            assert score >= selected_batch_min_eigenvalue(dataset, other.selected_indices) - 1e-12

    def test_eta_score_recorded_on_result(self, dataset, z_relaxed):
        result, score = select_eta(approx_round, dataset, z_relaxed, budget=3, eta_grid=(0.5, 2.0))
        assert result.eta_score == pytest.approx(score)

    def test_single_candidate_grid(self, dataset, z_relaxed):
        result, _ = select_eta(approx_round, dataset, z_relaxed, budget=3, eta_grid=(1.5,))
        assert result.eta == 1.5

    def test_empty_grid_rejected(self, dataset, z_relaxed):
        with pytest.raises(ValueError):
            select_eta(approx_round, dataset, z_relaxed, budget=3, eta_grid=())

    def test_negative_eta_rejected(self, dataset, z_relaxed):
        with pytest.raises(ValueError):
            select_eta(approx_round, dataset, z_relaxed, budget=3, eta_grid=(-1.0, 1.0))
