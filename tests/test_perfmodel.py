"""Tests for the analytic performance model (Tables II-IV, Figs. 5-7 theory)."""

import numpy as np
import pytest

from repro.perfmodel.collectives import allgather_time, allreduce_time, bcast_time, communication_time
from repro.perfmodel.complexity import (
    approx_firal_complexity,
    exact_firal_complexity,
    matvec_complexity,
    speedup_summary,
)
from repro.perfmodel.machine import A100_MACHINE, MachineSpec
from repro.perfmodel.relax_model import relax_step_model
from repro.perfmodel.round_model import round_step_model


class TestMachineSpec:
    def test_paper_parameters(self):
        assert A100_MACHINE.peak_flops == pytest.approx(19.5e12)
        assert A100_MACHINE.latency_seconds == pytest.approx(1e-4)
        assert A100_MACHINE.seconds_per_byte == pytest.approx(5e-11)
        assert A100_MACHINE.reduction_seconds_per_byte == pytest.approx(1e-10)
        assert A100_MACHINE.bytes_per_element == 4

    def test_compute_seconds(self):
        assert A100_MACHINE.compute_seconds(19.5e12) == pytest.approx(1.0)

    def test_efficiency_scales_time(self):
        machine = MachineSpec(efficiency=0.5)
        assert machine.compute_seconds(19.5e12) == pytest.approx(2.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(peak_flops=-1)
        with pytest.raises(ValueError):
            MachineSpec(efficiency=0.0)

    def test_message_bytes(self):
        assert A100_MACHINE.message_bytes(10) == 40


class TestCollectiveModels:
    def test_single_rank_is_free(self):
        assert allreduce_time(A100_MACHINE, 1e6, 1) == 0.0
        assert allgather_time(A100_MACHINE, 1e6, 1) == 0.0
        assert bcast_time(A100_MACHINE, 1e6, 1) == 0.0

    def test_allreduce_formula(self):
        expected = np.log2(4) * (1e-4 + 1000 * (5e-11 + 1e-10))
        assert allreduce_time(A100_MACHINE, 1000, 4) == pytest.approx(expected)

    def test_allgather_formula(self):
        expected = np.log2(8) * 1e-4 + (7 / 8) * 1000 * 5e-11
        assert allgather_time(A100_MACHINE, 1000, 8) == pytest.approx(expected)

    def test_bcast_formula(self):
        expected = np.log2(2) * (1e-4 + 500 * 5e-11)
        assert bcast_time(A100_MACHINE, 500, 2) == pytest.approx(expected)

    def test_monotone_in_message_size(self):
        small = allreduce_time(A100_MACHINE, 1e3, 4)
        large = allreduce_time(A100_MACHINE, 1e6, 4)
        assert large > small

    def test_monotone_in_ranks(self):
        assert allreduce_time(A100_MACHINE, 1e6, 8) > allreduce_time(A100_MACHINE, 1e6, 2)

    def test_negative_message_rejected(self):
        with pytest.raises(ValueError):
            allreduce_time(A100_MACHINE, -1, 2)

    def test_communication_time_from_traffic_dict(self):
        traffic = {"calls": {"allreduce": 2, "bcast": 1}, "bytes": {"allreduce": 2000, "bcast": 100}}
        total = communication_time(A100_MACHINE, traffic, 4)
        expected = (
            2 * np.log2(4) * 1e-4
            + np.log2(4) * 2000 * (5e-11 + 1e-10)
            + np.log2(4) * 1e-4
            + np.log2(4) * 100 * 5e-11
        )
        assert total == pytest.approx(expected)

    def test_communication_time_single_rank_zero(self):
        traffic = {"calls": {"allreduce": 5}, "bytes": {"allreduce": 100}}
        assert communication_time(A100_MACHINE, traffic, 1) == 0.0

    def test_communication_time_unknown_collective(self):
        with pytest.raises(ValueError):
            communication_time(A100_MACHINE, {"calls": {"alltoall": 1}, "bytes": {"alltoall": 1}}, 2)


class TestComplexityTables:
    def test_exact_storage_formula(self):
        est = exact_firal_complexity(n=1000, d=20, c=10, b=10)
        assert est["relax"].storage_elements == 10**2 * 20**2 + 1000 * 10**2 * 20

    def test_approx_storage_smaller_for_large_c(self):
        """Table II's headline: Approx-FIRAL storage drops from quadratic to
        linear in c."""

        n, d, c, b = 50_000, 383, 1000, 200
        exact = exact_firal_complexity(n, d, c, b)
        approx = approx_firal_complexity(n, d, c, b)
        assert approx["relax"].storage_elements < exact["relax"].storage_elements / 100

    def test_round_computation_speedup_grows_with_c(self):
        small = speedup_summary(n=5000, d=50, c=10, b=50)
        large = speedup_summary(n=5000, d=50, c=500, b=50)
        assert large["round_computation"] > small["round_computation"]

    def test_matvec_table(self):
        table = matvec_complexity(d=383, c=1000)
        assert table["direct"].storage_elements == 383**2 * 1000**2
        assert table["fast"].storage_elements == 383 * 1000
        assert table["fast"].computation_flops < table["direct"].computation_flops

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            exact_firal_complexity(0, 1, 1, 1)
        with pytest.raises(ValueError):
            approx_firal_complexity(1, 1, 1, 1, num_probes=0)


class TestStepModels:
    def test_relax_components_present_and_positive(self):
        times = relax_step_model(
            A100_MACHINE, num_points=100_000, dimension=383, num_classes=1000, num_ranks=3
        )
        for key in ("setup_preconditioner", "cg", "gradient", "communication", "total"):
            assert times[key] > 0

    def test_relax_compute_scales_down_with_ranks(self):
        one = relax_step_model(A100_MACHINE, num_points=1_000_000, dimension=383, num_classes=100, num_ranks=1)
        twelve = relax_step_model(A100_MACHINE, num_points=1_000_000, dimension=383, num_classes=100, num_ranks=12)
        assert twelve["cg"] < one["cg"]
        assert twelve["communication"] > one["communication"]

    def test_relax_scales_linearly_in_classes(self):
        """Fig. 5(B): preconditioner and CG cost are linear in c."""

        base = relax_step_model(A100_MACHINE, num_points=1_300_000, dimension=383, num_classes=100)
        big = relax_step_model(A100_MACHINE, num_points=1_300_000, dimension=383, num_classes=1000)
        assert big["cg"] / base["cg"] == pytest.approx(10.0, rel=0.05)

    def test_relax_preconditioner_superlinear_in_d(self):
        """Fig. 5(A): doubling d roughly quadruples (or more) the preconditioner cost."""

        base = relax_step_model(A100_MACHINE, num_points=100_000, dimension=383, num_classes=1000)
        big = relax_step_model(A100_MACHINE, num_points=100_000, dimension=766, num_classes=1000)
        ratio = big["setup_preconditioner"] / base["setup_preconditioner"]
        assert ratio > 3.5

    def test_round_components_present_and_positive(self):
        times = round_step_model(
            A100_MACHINE, num_points=1_300_000, dimension=383, num_classes=1000, num_ranks=3
        )
        for key in ("score", "compute_eigenvalues", "communication", "total"):
            assert times[key] > 0

    def test_round_eigenvalues_scale_down_with_ranks(self):
        """Fig. 7(B): distributing the c eigen-problems over ranks shrinks that
        component (the paper even sees weak scaling improve because of it)."""

        one = round_step_model(A100_MACHINE, num_points=100_000, dimension=383, num_classes=1000, num_ranks=1)
        twelve = round_step_model(A100_MACHINE, num_points=100_000, dimension=383, num_classes=1000, num_ranks=12)
        assert twelve["compute_eigenvalues"] < one["compute_eigenvalues"]

    def test_round_scales_linearly_in_classes(self):
        base = round_step_model(A100_MACHINE, num_points=1_300_000, dimension=383, num_classes=100)
        big = round_step_model(A100_MACHINE, num_points=1_300_000, dimension=383, num_classes=1000)
        assert big["score"] / base["score"] == pytest.approx(10.0, rel=0.05)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            relax_step_model(A100_MACHINE, num_points=0, dimension=1, num_classes=1)
        with pytest.raises(ValueError):
            round_step_model(A100_MACHINE, num_points=1, dimension=1, num_classes=1, num_ranks=0)
