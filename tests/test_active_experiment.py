"""Tests for the active-learning experiment driver and result containers."""

import numpy as np
import pytest

from repro.active.experiment import run_active_learning, run_trials
from repro.active.problem import ActiveLearningProblem
from repro.active.results import AggregateResult, ExperimentResult, RoundRecord
from repro.baselines.entropy import EntropyStrategy
from repro.baselines.random_sampling import RandomStrategy
from repro.datasets.registry import build_problem


@pytest.fixture(scope="module")
def problem():
    return build_problem("cifar10", scale=0.03, seed=0)


class TestProblem:
    def test_summary_mentions_sizes(self, problem):
        text = problem.summary()
        assert "c=10" in text and "d=20" in text

    def test_dimension_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ActiveLearningProblem(
                initial_features=rng.standard_normal((2, 3)),
                initial_labels=np.array([0, 1]),
                pool_features=rng.standard_normal((5, 4)),
                pool_labels=np.zeros(5, dtype=np.int64),
                eval_features=rng.standard_normal((5, 3)),
                eval_labels=np.zeros(5, dtype=np.int64),
                num_classes=2,
            )

    def test_label_out_of_range_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ActiveLearningProblem(
                initial_features=rng.standard_normal((2, 3)),
                initial_labels=np.array([0, 5]),
                pool_features=rng.standard_normal((5, 3)),
                pool_labels=np.zeros(5, dtype=np.int64),
                eval_features=rng.standard_normal((5, 3)),
                eval_labels=np.zeros(5, dtype=np.int64),
                num_classes=2,
            )


class TestRunActiveLearning:
    def test_record_count_matches_rounds(self, problem):
        result = run_active_learning(
            problem, RandomStrategy(), num_rounds=3, budget_per_round=10, seed=0
        )
        assert len(result.records) == 4  # initial + 3 rounds

    def test_labels_accumulate_by_budget(self, problem):
        result = run_active_learning(
            problem, RandomStrategy(), num_rounds=3, budget_per_round=10, seed=0
        )
        np.testing.assert_array_equal(result.num_labeled(), [10, 20, 30, 40])

    def test_without_initial_record(self, problem):
        result = run_active_learning(
            problem,
            RandomStrategy(),
            num_rounds=2,
            budget_per_round=10,
            seed=0,
            record_initial=False,
        )
        assert len(result.records) == 2

    def test_accuracy_improves_with_labels(self, problem):
        result = run_active_learning(
            problem, RandomStrategy(), num_rounds=3, budget_per_round=10, seed=1
        )
        assert result.final_eval_accuracy() > result.records[0].eval_accuracy - 0.05
        assert result.final_eval_accuracy() > 0.5

    def test_entropy_strategy_runs(self, problem):
        result = run_active_learning(
            problem, EntropyStrategy(), num_rounds=2, budget_per_round=10, seed=0
        )
        assert result.strategy_name == "entropy"
        assert np.all(result.eval_accuracy() <= 1.0)

    def test_budget_exceeding_pool_rejected(self, problem):
        with pytest.raises(ValueError):
            run_active_learning(
                problem, RandomStrategy(), num_rounds=100, budget_per_round=1000, seed=0
            )

    def test_selection_seconds_recorded(self, problem):
        result = run_active_learning(
            problem, RandomStrategy(), num_rounds=1, budget_per_round=5, seed=0
        )
        assert result.records[-1].selection_seconds >= 0.0

    def test_reproducible_with_same_seed(self, problem):
        a = run_active_learning(problem, RandomStrategy(), num_rounds=2, budget_per_round=5, seed=3)
        b = run_active_learning(problem, RandomStrategy(), num_rounds=2, budget_per_round=5, seed=3)
        np.testing.assert_allclose(a.eval_accuracy(), b.eval_accuracy())


class TestRunTrials:
    def test_aggregates_multiple_trials(self, problem):
        agg = run_trials(
            problem,
            RandomStrategy,
            num_rounds=2,
            budget_per_round=10,
            num_trials=3,
            seed=0,
        )
        assert agg.num_trials == 3
        assert agg.mean_eval_accuracy().shape == (3,)
        assert np.all(agg.std_eval_accuracy() >= 0.0)

    def test_single_trial_std_is_zero(self, problem):
        agg = run_trials(problem, EntropyStrategy, num_rounds=1, budget_per_round=10, num_trials=1)
        np.testing.assert_array_equal(agg.std_eval_accuracy(), 0.0)

    def test_table_formatting(self, problem):
        agg = run_trials(problem, RandomStrategy, num_rounds=1, budget_per_round=5, num_trials=2)
        table = agg.to_table()
        assert "random" in table
        assert "labels" in table


class TestResultContainers:
    def _record(self, n, acc):
        return RoundRecord(n, acc, acc, acc)

    def test_experiment_result_arrays(self):
        result = ExperimentResult("s", "d", [self._record(10, 0.5), self._record(20, 0.7)])
        np.testing.assert_array_equal(result.num_labeled(), [10, 20])
        np.testing.assert_allclose(result.eval_accuracy(), [0.5, 0.7])
        assert result.final_eval_accuracy() == pytest.approx(0.7)
        assert "0.7000" in result.to_table()

    def test_empty_experiment_final_accuracy_rejected(self):
        with pytest.raises(ValueError):
            ExperimentResult("s", "d").final_eval_accuracy()

    def test_aggregate_requires_consistent_trials(self):
        a = ExperimentResult("s", "d", [self._record(10, 0.5)])
        b = ExperimentResult("s", "d", [self._record(10, 0.6), self._record(20, 0.7)])
        with pytest.raises(ValueError):
            AggregateResult("s", "d", [a, b])

    def test_aggregate_mean(self):
        a = ExperimentResult("s", "d", [self._record(10, 0.4)])
        b = ExperimentResult("s", "d", [self._record(10, 0.6)])
        agg = AggregateResult("s", "d", [a, b])
        assert agg.mean_eval_accuracy()[0] == pytest.approx(0.5)
        assert agg.std_eval_accuracy()[0] > 0.0

    def test_round_record_as_dict(self):
        record = RoundRecord(10, 0.1, 0.2, 0.3, 1.5)
        d = record.as_dict()
        assert d["num_labeled"] == 10.0
        assert d["selection_seconds"] == 1.5
