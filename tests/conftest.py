"""Shared fixtures for the test suite.

Problem sizes are deliberately small (tens of points, a handful of classes)
so the whole suite runs in seconds while still exercising every code path,
including the dense Exact-FIRAL reference implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fisher.operators import FisherDataset


def random_probabilities(rng: np.random.Generator, n: int, c: int) -> np.ndarray:
    """Random points on the probability simplex (rows of shape (n, c))."""

    logits = rng.standard_normal((n, c))
    expd = np.exp(logits - logits.max(axis=1, keepdims=True))
    return expd / expd.sum(axis=1, keepdims=True)


def make_fisher_dataset(
    seed: int = 0,
    *,
    num_pool: int = 40,
    num_labeled: int = 8,
    dimension: int = 6,
    num_classes: int = 4,
    dtype=np.float64,
) -> FisherDataset:
    """Construct a small random FisherDataset for solver tests."""

    rng = np.random.default_rng(seed)
    return FisherDataset(
        pool_features=rng.standard_normal((num_pool, dimension)).astype(dtype),
        pool_probabilities=random_probabilities(rng, num_pool, num_classes).astype(dtype),
        labeled_features=rng.standard_normal((num_labeled, dimension)).astype(dtype),
        labeled_probabilities=random_probabilities(rng, num_labeled, num_classes).astype(dtype),
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_dataset() -> FisherDataset:
    """A 40-point, 4-class, 6-dimensional Fisher dataset."""

    return make_fisher_dataset(seed=0)


@pytest.fixture
def tiny_dataset() -> FisherDataset:
    """A very small dataset for the dense Exact-FIRAL reference solves."""

    return make_fisher_dataset(seed=1, num_pool=25, num_labeled=6, dimension=4, num_classes=3)
