"""The half-round protocol: ``propose()`` / ``observe()`` vs the monolithic ``step()``.

The serving-grade API redesign splits a round at the labeling boundary so a
service can hold a proposal open while a remote labeler works.  The pins:

* ``step()`` is now ``propose(); observe()`` — a session driven through the
  explicit halves produces curves and selections **bit-identical** to one
  driven by ``step()``, for every shipped strategy, serial and under
  ``parallel_ranks=2`` (Exact-FIRAL has no distributed formulation and is
  pinned serial-only);
* ``observe(labels=...)`` routes an external labeler's answers into the
  store's label master before membership flips — with the oracle's own
  answers it is bit-identical to ``observe()``;
* the protocol fails loudly on misuse (double propose, observe without a
  proposal, misaligned or out-of-range labels, ``extend_pool`` while a
  proposal is pending);
* ``invalidate_proposal()`` rolls the RNG stream, strategy state and Fisher
  accumulator back to the pre-proposal boundary, so the replayed proposal is
  bit-identical — never a double draw, never a silent drop;
* a checkpoint written **mid-proposal** resumes at the boundary with the
  pending proposal surfaced via ``ActiveSession.invalidated_proposal``; the
  replayed round and everything after it match the uninterrupted run, and
  ``extend_pool`` after such a resume is legal (the replay then legitimately
  differs — that is the PR's resume/extend rule).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.engine import ActiveSession, QueryProposal, SessionConfig
from repro.engine.stores import ShardedPointStore, StreamingPointStore

from test_engine_session import (
    STRATEGY_FACTORIES,
    _assert_curves_identical,
    _small_problem,
)

#: Strategies with a distributed formulation (Exact-FIRAL rejects
#: ``parallel_ranks`` by contract — see ``FIRALStrategy.start``).
PARALLEL_STRATEGIES = sorted(set(STRATEGY_FACTORIES) - {"exact-firal"})


@pytest.fixture(scope="module")
def problem():
    return _small_problem(seed=0)


def _session(problem, name, *, seed=7, config=None, num_rounds=3):
    return ActiveSession(
        problem,
        STRATEGY_FACTORIES[name](),
        budget_per_round=4,
        num_rounds=num_rounds,
        seed=seed,
        config=config,
    )


def _parallel_config():
    return SessionConfig(store=ShardedPointStore.factory(num_shards=2), parallel_ranks=2)


def _drive_half_rounds(session, rounds):
    """Run ``rounds`` rounds through the explicit propose/observe halves."""

    for _ in range(rounds):
        proposal = session.propose()
        assert session.pending_proposal is proposal
        session.observe()
        assert session.pending_proposal is None
    return session.result


# --------------------------------------------------------------------- #
# the acceptance pin: propose()+observe() == step(), bit for bit
# --------------------------------------------------------------------- #
class TestStepEquivalence:
    @pytest.mark.parametrize("name", sorted(STRATEGY_FACTORIES))
    def test_serial_bit_identical(self, problem, name):
        stepped = _session(problem, name)
        for _ in range(3):
            stepped.step()

        halved = _session(problem, name)
        _drive_half_rounds(halved, 3)

        _assert_curves_identical(stepped.result, halved.result)
        np.testing.assert_array_equal(
            stepped.store.labeled_ids, halved.store.labeled_ids
        )

    @pytest.mark.parametrize("name", PARALLEL_STRATEGIES)
    def test_parallel_ranks_bit_identical(self, problem, name):
        stepped = _session(problem, name, config=_parallel_config())
        for _ in range(3):
            stepped.step()

        halved = _session(problem, name, config=_parallel_config())
        _drive_half_rounds(halved, 3)

        _assert_curves_identical(stepped.result, halved.result)
        np.testing.assert_array_equal(
            stepped.store.labeled_ids, halved.store.labeled_ids
        )

    def test_external_oracle_labels_bit_identical(self, problem):
        """observe(labels=oracle's answers) == observe() — the serving path."""

        internal = _session(problem, "entropy")
        for _ in range(3):
            internal.step()

        external = _session(problem, "entropy")
        for _ in range(3):
            proposal = external.propose()
            # Global ids of pool points are initial_size + original pool row.
            answers = problem.pool_labels[proposal.global_ids - problem.initial_size]
            external.observe(labels=answers)

        _assert_curves_identical(internal.result, external.result)
        np.testing.assert_array_equal(
            internal.store.labeled_ids, external.store.labeled_ids
        )


# --------------------------------------------------------------------- #
# the QueryProposal payload
# --------------------------------------------------------------------- #
class TestQueryProposal:
    def test_contents(self, problem):
        session = _session(problem, "random")
        proposal = session.propose()

        assert isinstance(proposal, QueryProposal)
        assert proposal.round_index == 0
        assert proposal.budget == 4
        assert proposal.num_labeled == problem.initial_size
        assert proposal.global_ids.shape == (4,)
        assert proposal.pool_indices.shape == (4,)
        # Proposed points are live pool members, not yet labeled.
        assert not np.any(np.isin(proposal.global_ids, session.store.labeled_ids))
        assert proposal.setup_seconds >= 0.0
        assert proposal.selection_seconds >= 0.0

    def test_frozen(self, problem):
        session = _session(problem, "random")
        proposal = session.propose()
        with pytest.raises(dataclasses.FrozenInstanceError):
            proposal.budget = 99


# --------------------------------------------------------------------- #
# protocol misuse fails loudly
# --------------------------------------------------------------------- #
class TestProtocolErrors:
    def test_double_propose(self, problem):
        session = _session(problem, "random")
        session.propose()
        with pytest.raises(ValueError, match="already pending"):
            session.propose()

    def test_observe_without_proposal(self, problem):
        session = _session(problem, "random")
        with pytest.raises(ValueError, match="no pending proposal"):
            session.observe()

    def test_misaligned_labels(self, problem):
        session = _session(problem, "random")
        session.propose()
        with pytest.raises(ValueError, match="3 labels for a proposal of 4"):
            session.observe(labels=[0, 1, 2])

    def test_out_of_range_labels(self, problem):
        session = _session(problem, "random")
        session.propose()
        with pytest.raises(ValueError, match="labels must lie in"):
            session.observe(labels=[0, 1, 2, problem.num_classes])

    def test_extend_pool_while_pending(self, problem):
        session = ActiveSession(
            problem,
            STRATEGY_FACTORIES["random"](),
            budget_per_round=4,
            seed=7,
            config=SessionConfig(store=StreamingPointStore.from_problem),
        )
        session.propose()
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError, match="proposal is pending"):
            session.extend_pool(
                rng.standard_normal((2, problem.dimension)),
                np.zeros(2, dtype=np.int64),
            )
        # After the round completes, the same extension is legal.
        session.observe()
        new_ids = session.extend_pool(
            rng.standard_normal((2, problem.dimension)), np.zeros(2, dtype=np.int64)
        )
        assert new_ids.shape == (2,)

    def test_invalidate_without_proposal(self, problem):
        session = _session(problem, "random")
        with pytest.raises(ValueError, match="no pending proposal"):
            session.invalidate_proposal()


# --------------------------------------------------------------------- #
# invalidation rolls back to the round boundary
# --------------------------------------------------------------------- #
class TestInvalidateProposal:
    @pytest.mark.parametrize("name", ["random", "approx-firal"])
    def test_replay_is_bit_identical(self, problem, name):
        """Invalidating and re-proposing replays the exact same round.

        ``random`` exercises the RNG rollback (it draws from the session
        stream), ``approx-firal`` the strategy-state rollback (RELAX warm
        starts and η reuse must not see the discarded solve).
        """

        reference = _session(problem, name)
        for _ in range(3):
            reference.step()

        interrupted = _session(problem, name)
        first = interrupted.propose()
        discarded = interrupted.invalidate_proposal()
        assert discarded is first
        assert interrupted.pending_proposal is None

        replayed = interrupted.propose()
        np.testing.assert_array_equal(first.global_ids, replayed.global_ids)
        interrupted.observe()
        for _ in range(2):
            interrupted.step()

        _assert_curves_identical(reference.result, interrupted.result)
        np.testing.assert_array_equal(
            reference.store.labeled_ids, interrupted.store.labeled_ids
        )

    def test_incremental_fisher_rollback(self, problem):
        """The accumulator snapshot restores under incremental_fisher."""

        config = SessionConfig(incremental_fisher=True)
        reference = _session(problem, "approx-firal", config=config)
        for _ in range(3):
            reference.step()

        interrupted = _session(problem, "approx-firal", config=config)
        interrupted.step()
        interrupted.propose()
        interrupted.invalidate_proposal()
        interrupted.step()
        interrupted.step()

        _assert_curves_identical(reference.result, interrupted.result)


# --------------------------------------------------------------------- #
# mid-proposal checkpoint / resume: the service crash-recovery rule
# --------------------------------------------------------------------- #
class TestMidProposalCheckpoint:
    @pytest.mark.parametrize("name", ["random", "approx-firal"])
    def test_resume_invalidates_and_replays(self, problem, tmp_path, name):
        """A checkpoint written while a proposal is open restores to the
        pre-proposal boundary, surfaces the discarded proposal through
        ``invalidated_proposal``, and the replayed round (and everything
        after it) is bit-identical to the uninterrupted run."""

        factory = STRATEGY_FACTORIES[name]
        reference = _session(problem, name)
        for _ in range(3):
            reference.step()

        crashed = _session(problem, name)
        crashed.step()
        pending = crashed.propose()  # ...the labeler goes dark here
        ckpt = crashed.checkpoint(tmp_path / "mid.json")

        resumed = ActiveSession.resume(ckpt, problem, factory())
        assert resumed.pending_proposal is None
        surfaced = resumed.invalidated_proposal
        assert surfaced is not None
        assert surfaced["round_index"] == pending.round_index
        np.testing.assert_array_equal(surfaced["global_ids"], pending.global_ids)

        replayed = resumed.propose()
        np.testing.assert_array_equal(replayed.global_ids, pending.global_ids)
        resumed.observe()
        resumed.step()

        _assert_curves_identical(reference.result, resumed.result)
        np.testing.assert_array_equal(
            reference.store.labeled_ids, resumed.store.labeled_ids
        )

    def test_round_boundary_checkpoint_has_no_invalidation(self, problem, tmp_path):
        session = _session(problem, "random")
        session.step()
        ckpt = session.checkpoint(tmp_path / "boundary.json")
        resumed = ActiveSession.resume(ckpt, problem, STRATEGY_FACTORIES["random"]())
        assert resumed.invalidated_proposal is None

    def test_resume_then_extend_pool_is_legal(self, problem, tmp_path):
        """The resume/extend rule: after a mid-proposal restore the pending
        proposal is already invalidated, so growing the pool *before*
        re-proposing is legal — and the replay then legitimately differs."""

        make_config = lambda: SessionConfig(store=StreamingPointStore.from_problem)  # noqa: E731
        session = ActiveSession(
            problem,
            STRATEGY_FACTORIES["random"](),
            budget_per_round=4,
            seed=7,
            config=make_config(),
        )
        session.step()
        session.propose()
        ckpt = session.checkpoint(tmp_path / "mid.json")

        resumed = ActiveSession.resume(
            ckpt, problem, STRATEGY_FACTORIES["random"](), config=make_config()
        )
        assert resumed.invalidated_proposal is not None
        rng = np.random.default_rng(11)
        new_ids = resumed.extend_pool(
            rng.standard_normal((3, problem.dimension)), np.zeros(3, dtype=np.int64)
        )
        assert new_ids.shape == (3,)
        proposal = resumed.propose()  # replays over the *grown* pool
        assert proposal.round_index == 1
        resumed.observe()
