"""``SessionConfig.validate()``: every rejection, one place, field-named errors.

The API-redesign consolidation: checks that used to be scattered across
``ActiveSession.__init__`` / store building / strategy start now live in a
single ``validate()`` called at session construction — and callable
standalone, so a serving layer can vet a config at admission time before
any session state exists.  One test per rejection, each matching the
offending field's name in the message.
"""

from __future__ import annotations

import pytest

from repro.engine import ActiveSession, SessionConfig
from repro.engine.session import VALID_TRANSPORTS

from test_engine_session import STRATEGY_FACTORIES, _small_problem


def _reject(config: SessionConfig, match: str):
    with pytest.raises(ValueError, match=match):
        config.validate()


class TestFieldRejections:
    def test_parallel_ranks_must_be_positive(self):
        _reject(
            SessionConfig(parallel_ranks=0),
            r"SessionConfig\.parallel_ranks must be positive \(got 0\)",
        )

    def test_parallel_transport_must_be_known(self):
        assert VALID_TRANSPORTS == ("simulated", "shared_memory")
        _reject(
            SessionConfig(parallel_ranks=2, parallel_transport="mpi"),
            r"SessionConfig\.parallel_transport must be one of",
        )

    def test_transport_only_checked_with_ranks(self):
        # A bogus transport is inert without parallel_ranks — it is "only
        # read when parallel_ranks is set" (the field's documented contract).
        SessionConfig(parallel_transport="mpi").validate()

    def test_fisher_refresh_every_must_be_positive(self):
        _reject(
            SessionConfig(incremental_fisher=True, fisher_refresh_every=0),
            r"SessionConfig\.fisher_refresh_every must be positive",
        )

    def test_fisher_refresh_requires_incremental_fisher(self):
        _reject(
            SessionConfig(fisher_refresh_every=2),
            r"SessionConfig\.fisher_refresh_every only applies with incremental_fisher",
        )

    def test_prefilter_must_implement_protocol(self):
        _reject(
            SessionConfig(prefilter=object()),
            r"SessionConfig\.prefilter must implement",
        )

    def test_on_rank_failure_must_be_known_policy(self):
        _reject(
            SessionConfig(on_rank_failure="retry"),
            r"SessionConfig\.on_rank_failure must be 'abort' or 'repartition_retry'",
        )

    def test_fault_plan_requires_parallel_ranks(self):
        _reject(
            SessionConfig(fault_plan=object()),
            r"SessionConfig\.fault_plan requires parallel_ranks",
        )

    def test_checkpoint_every_must_be_positive(self):
        _reject(
            SessionConfig(checkpoint_every=0, checkpoint_path="x.json"),
            r"SessionConfig\.checkpoint_every must be positive",
        )

    def test_checkpoint_every_requires_path(self):
        _reject(
            SessionConfig(checkpoint_every=2),
            r"SessionConfig\.checkpoint_every requires checkpoint_path",
        )


class TestValidationWiring:
    def test_validate_returns_self(self):
        config = SessionConfig()
        assert config.validate() is config

    def test_session_construction_validates(self):
        problem = _small_problem(seed=0)
        with pytest.raises(ValueError, match=r"SessionConfig\.parallel_ranks"):
            ActiveSession(
                problem,
                STRATEGY_FACTORIES["random"](),
                budget_per_round=4,
                config=SessionConfig(parallel_ranks=-1),
            )

    def test_default_config_is_valid(self):
        SessionConfig().validate()
        SessionConfig.fast().validate()
