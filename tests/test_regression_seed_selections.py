"""Pinned FIRAL selections on the default NumPy backend.

The backend-dispatch refactor must not change what the solvers compute: with
the default backend, ``ApproxFIRAL.select`` and ``ExactFIRAL.select`` must
return exactly the indices the pre-dispatch implementation produced for the
same seeds and configs.  The expectations below were captured from the seed
revision (commit ``c47962e``) before the refactor.

These tests are intentionally strict (exact index equality).  If a future PR
changes the numerics *deliberately* (e.g. a different probe distribution),
re-derive the expectations and document the change.
"""

from __future__ import annotations

import numpy as np

from repro import ApproxFIRAL, ExactFIRAL, RelaxConfig, RoundConfig
from tests.conftest import make_fisher_dataset


def test_approx_firal_selection_matches_seed_revision(small_dataset):
    result = ApproxFIRAL(
        RelaxConfig(max_iterations=15, seed=0),
        RoundConfig(eta=1.0),
    ).select(small_dataset, 5)
    np.testing.assert_array_equal(result.selected_indices, [39, 36, 31, 26, 23])


def test_exact_firal_selection_matches_seed_revision(tiny_dataset):
    result = ExactFIRAL(
        RelaxConfig(max_iterations=10, track_objective="exact"),
        RoundConfig(eta=1.0),
    ).select(tiny_dataset, 4)
    np.testing.assert_array_equal(result.selected_indices, [23, 6, 20, 5])


def test_approx_firal_eta_grid_search_matches_seed_revision():
    tiny = make_fisher_dataset(seed=1, num_pool=25, num_labeled=6, dimension=4, num_classes=3)
    result = ApproxFIRAL(
        RelaxConfig(max_iterations=10, seed=3),
        RoundConfig(eta_grid=(0.5, 2.0)),
    ).select(tiny, 3)
    np.testing.assert_array_equal(result.selected_indices, [6, 23, 5])
    assert result.round.eta == 0.5
