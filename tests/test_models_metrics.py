"""Tests for the classification metrics."""

import numpy as np
import pytest

from repro.models.metrics import (
    accuracy,
    class_balanced_accuracy,
    confusion_matrix,
    per_class_accuracy,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 2], [0, 1, 2]) == 1.0

    def test_all_wrong(self):
        assert accuracy([0, 1, 2], [1, 2, 0]) == 0.0

    def test_half(self):
        assert accuracy([0, 1, 1, 0], [0, 1, 0, 1]) == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy([0, 1], [0, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy([], [])


class TestConfusionMatrix:
    def test_counts(self):
        cm = confusion_matrix([0, 0, 1, 1, 2], [0, 1, 1, 1, 0], num_classes=3)
        expected = np.array([[1, 1, 0], [0, 2, 0], [1, 0, 0]])
        np.testing.assert_array_equal(cm, expected)

    def test_total_equals_num_samples(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 4, size=50)
        y_pred = rng.integers(0, 4, size=50)
        cm = confusion_matrix(y_true, y_pred, num_classes=4)
        assert cm.sum() == 50

    def test_diagonal_counts_correct_predictions(self):
        y = np.array([0, 1, 2, 2, 1])
        cm = confusion_matrix(y, y, num_classes=3)
        np.testing.assert_array_equal(np.diag(cm), [1, 2, 2])


class TestPerClassAndBalanced:
    def test_per_class_accuracy_values(self):
        y_true = np.array([0, 0, 1, 1, 1, 2])
        y_pred = np.array([0, 1, 1, 1, 0, 2])
        acc = per_class_accuracy(y_true, y_pred, num_classes=3)
        np.testing.assert_allclose(acc, [0.5, 2 / 3, 1.0])

    def test_absent_class_is_nan(self):
        acc = per_class_accuracy(np.array([0, 0]), np.array([0, 1]), num_classes=3)
        assert np.isnan(acc[1]) and np.isnan(acc[2])

    def test_balanced_accuracy_weights_classes_equally(self):
        """A majority-class predictor looks good on plain accuracy but poor on
        the class-balanced metric, which is exactly why Fig. 3(B) reports it
        for the imbalanced Caltech-101 experiment."""

        y_true = np.array([0] * 90 + [1] * 10)
        y_pred = np.zeros(100, dtype=np.int64)
        assert accuracy(y_true, y_pred) == pytest.approx(0.9)
        assert class_balanced_accuracy(y_true, y_pred, num_classes=2) == pytest.approx(0.5)

    def test_balanced_equals_plain_for_balanced_perfect(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert class_balanced_accuracy(y, y, num_classes=3) == 1.0

    def test_balanced_requires_some_class_present(self):
        with pytest.raises(ValueError):
            class_balanced_accuracy(np.array([], dtype=np.int64), np.array([], dtype=np.int64), 3)
