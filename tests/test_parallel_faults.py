"""Tests for deterministic fault injection and rank-failure recovery.

The simulated-transport tests run in tier-1 CI; the ``chaos``-marked classes
re-run every failure mode with real OS processes over the shared-memory
transport (the CI ``chaos`` job runs exactly these with ``pytest -m chaos``).
Entry points handed to the spawn transport must be module-level functions.
"""

import numpy as np
import pytest

from repro.parallel.comm import CommAbortedError, CommError, CommProtocolError
from repro.parallel.faults import (
    FAULT_MODES,
    FaultInjectingEntry,
    FaultPlan,
    InjectedFaultError,
    current_attempt,
)
from repro.parallel.launcher import RankFailedError, run_spmd

COLLECTIVES = ("allreduce", "allgather", "bcast", "argmax_allreduce", "barrier")


# --------------------------------------------------------------------- #
# module-level rank bodies (picklable for the spawn transport)
# --------------------------------------------------------------------- #
def roundtrip_rank(comm, arg):
    """One call to each collective, in a fixed program order."""

    total = comm.allreduce(np.asarray([float(comm.rank + 1)]))
    gathered = comm.allgather(np.asarray([float(comm.rank)]))
    blessed = comm.bcast(np.asarray([7.0]) if comm.rank == 0 else None, root=0)
    winner = comm.argmax_allreduce(float(comm.rank), 10 + comm.rank)
    comm.barrier()
    return (
        np.asarray(total),
        np.asarray(gathered),
        np.asarray(blessed),
        winner,
    )


def attempt_echo_rank(comm, arg):
    comm.allreduce(np.asarray([1.0]))
    return (comm.rank, current_attempt())


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(rank=-1)
        with pytest.raises(ValueError):
            FaultPlan(rank=0, at_call=0)
        with pytest.raises(ValueError):
            FaultPlan(rank=0, mode="explode")
        with pytest.raises(ValueError):
            FaultPlan(rank=0, collective="reduce_scatter")
        with pytest.raises(ValueError):
            FaultPlan(rank=0, delay_seconds=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(rank=0, attempt=-1)

    def test_modes_are_closed(self):
        assert FAULT_MODES == ("kill", "delay", "drop")

    def test_dict_roundtrip(self):
        plan = FaultPlan(rank=1, at_call=3, mode="drop", collective="bcast", attempt=2)
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestSimulatedInjection:
    def test_clean_plan_is_invisible(self):
        """A plan whose rank is outside the communicator never fires."""

        clean = run_spmd(roundtrip_rank, [None, None])
        inert = run_spmd(
            FaultInjectingEntry(roundtrip_rank, FaultPlan(rank=7)), [None, None]
        )
        for a, b in zip(clean, inert):
            np.testing.assert_array_equal(a[0], b[0])
            np.testing.assert_array_equal(a[1], b[1])
            np.testing.assert_array_equal(a[2], b[2])
            assert a[3] == b[3]

    @pytest.mark.parametrize("collective", COLLECTIVES)
    def test_kill_propagates_root_cause_per_collective(self, collective):
        """Satellite pin: the injected death at every collective site surfaces
        as the root cause, with its structured fields, not a peer's abort."""

        plan = FaultPlan(rank=1, mode="kill", collective=collective)
        with pytest.raises(InjectedFaultError) as excinfo:
            run_spmd(FaultInjectingEntry(roundtrip_rank, plan), [None, None])
        # Dispatch on the structured fields, never on the message text.
        assert excinfo.value.rank == 1
        assert excinfo.value.collective == collective
        assert excinfo.value.sequence == 1

    def test_delay_is_benign(self):
        plan = FaultPlan(rank=0, mode="delay", delay_seconds=0.01)
        clean = run_spmd(roundtrip_rank, [None, None])
        delayed = run_spmd(FaultInjectingEntry(roundtrip_rank, plan), [None, None])
        np.testing.assert_array_equal(clean[0][0], delayed[0][0])
        np.testing.assert_array_equal(clean[1][1], delayed[1][1])
        assert clean[0][3] == delayed[0][3]

    def test_drop_surfaces_as_protocol_error(self):
        """A dropped collective desynchronizes the rank; the next rendezvous
        detects the divergence deterministically instead of reducing garbage."""

        plan = FaultPlan(rank=1, mode="drop", collective="allreduce")
        with pytest.raises((CommProtocolError, CommAbortedError)) as excinfo:
            run_spmd(FaultInjectingEntry(roundtrip_rank, plan), [None, None])
        assert excinfo.value.rank is not None
        assert excinfo.value.collective is not None

    def test_peer_abort_carries_collective_context(self):
        """The surviving rank's CommAbortedError names the collective it was
        blocked in when its peer died.

        The kill fires at the dead rank's *first* collective, so the
        survivor is deterministically parked at that same rendezvous — a
        later kill site would race the survivor's exit from the previous
        collective's closing barrier.
        """

        plan = FaultPlan(rank=1, mode="kill", collective="allreduce")
        errors = {}

        def capture(comm, arg):
            try:
                return roundtrip_rank(comm, arg)
            except CommError as exc:
                errors[comm.rank] = exc
                raise

        with pytest.raises(InjectedFaultError):
            run_spmd(FaultInjectingEntry(capture, plan), [None, None])
        survivor = errors.get(0)
        assert isinstance(survivor, CommAbortedError)
        assert survivor.rank == 0
        assert survivor.collective == "allreduce"
        assert survivor.sequence == 1

    def test_retry_recovers_from_transient_fault(self):
        """An attempt-0-gated kill fails the first launch; max_retries=1
        relaunches and the second attempt runs clean."""

        plan = FaultPlan(rank=1, mode="kill", attempt=0)
        entry = FaultInjectingEntry(attempt_echo_rank, plan)
        with pytest.raises(InjectedFaultError):
            run_spmd(entry, [None, None])
        outputs = run_spmd(entry, [None, None], max_retries=1, retry_backoff=0.0)
        assert outputs == [(0, 1), (1, 1)]

    def test_retry_does_not_mask_rank_body_bugs(self):
        def buggy(comm, arg):
            raise KeyError("not a communicator failure")

        with pytest.raises(KeyError):
            run_spmd(buggy, [None, None], max_retries=5, retry_backoff=0.0)

    def test_permanent_fault_exhausts_retries(self):
        plan = FaultPlan(rank=1, mode="kill")
        with pytest.raises(InjectedFaultError):
            run_spmd(
                FaultInjectingEntry(attempt_echo_rank, plan),
                [None, None],
                max_retries=2,
                retry_backoff=0.0,
            )

    def test_attempt_env_restored_after_launch(self):
        import os

        from repro.parallel.launcher import SPMD_ATTEMPT_ENV

        assert os.environ.get(SPMD_ATTEMPT_ENV) is None
        run_spmd(attempt_echo_rank, [None, None])
        assert os.environ.get(SPMD_ATTEMPT_ENV) is None


@pytest.mark.chaos
@pytest.mark.multiprocess
class TestSharedMemoryInjection:
    """Every failure mode again, with ranks as real spawned OS processes."""

    @pytest.mark.parametrize("collective", COLLECTIVES)
    def test_kill_propagates_root_cause_per_collective(self, collective):
        plan = FaultPlan(rank=1, mode="kill", collective=collective)
        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(
                FaultInjectingEntry(roundtrip_rank, plan),
                [None, None],
                transport="shared_memory",
                max_message_bytes=1024,
            )
        # The original exception type and its structured fields survive the
        # process boundary — recovery code dispatches on these, not on the
        # pickled traceback text.
        assert excinfo.value.cause_type == InjectedFaultError.__name__
        assert excinfo.value.rank == 1
        assert excinfo.value.collective == collective
        assert excinfo.value.sequence == 1

    def test_delay_is_benign(self):
        plan = FaultPlan(rank=0, mode="delay", delay_seconds=0.01)
        clean = run_spmd(
            roundtrip_rank, [None, None], transport="shared_memory", max_message_bytes=1024
        )
        delayed = run_spmd(
            FaultInjectingEntry(roundtrip_rank, plan),
            [None, None],
            transport="shared_memory",
            max_message_bytes=1024,
        )
        np.testing.assert_array_equal(clean[0][0], delayed[0][0])
        assert clean[1][3] == delayed[1][3]

    def test_drop_surfaces_as_protocol_error(self):
        plan = FaultPlan(rank=1, mode="drop", collective="allreduce")
        with pytest.raises(RankFailedError) as excinfo:
            run_spmd(
                FaultInjectingEntry(roundtrip_rank, plan),
                [None, None],
                transport="shared_memory",
                max_message_bytes=1024,
            )
        assert excinfo.value.cause_type in (
            CommProtocolError.__name__,
            CommAbortedError.__name__,
        )
        assert excinfo.value.collective is not None

    def test_retry_recovers_from_transient_fault(self):
        """The attempt gate crosses the spawn boundary via the environment."""

        plan = FaultPlan(rank=1, mode="kill", attempt=0)
        entry = FaultInjectingEntry(attempt_echo_rank, plan)
        outputs = run_spmd(
            entry,
            [None, None],
            transport="shared_memory",
            max_message_bytes=1024,
            max_retries=1,
            retry_backoff=0.0,
        )
        assert outputs == [(0, 1), (1, 1)]
