"""JSON round-trip tests for the result containers (checkpointing support)."""

import numpy as np
import pytest

from repro.active.results import AggregateResult, ExperimentResult, RoundRecord


def _record(n, acc, sel=0.5, setup=0.25):
    return RoundRecord(n, acc, acc + 0.01, acc + 0.02, sel, setup)


def _experiment(name="approx-firal", rounds=3):
    return ExperimentResult(
        strategy_name=name,
        dataset_name="cifar10",
        records=[_record(10 * (i + 1), 0.5 + 0.05 * i) for i in range(rounds)],
    )


class TestRoundRecordSerialization:
    def test_round_trip(self):
        record = _record(20, 0.7)
        restored = RoundRecord.from_dict(record.as_dict())
        assert restored == record

    def test_setup_seconds_in_dict(self):
        d = _record(10, 0.5, sel=1.5, setup=0.75).as_dict()
        assert d["selection_seconds"] == 1.5
        assert d["setup_seconds"] == 0.75

    def test_missing_timings_default_to_zero(self):
        restored = RoundRecord.from_dict(
            {
                "num_labeled": 10,
                "pool_accuracy": 0.5,
                "eval_accuracy": 0.6,
                "balanced_eval_accuracy": 0.55,
            }
        )
        assert restored.selection_seconds == 0.0
        assert restored.setup_seconds == 0.0


class TestExperimentResultSerialization:
    def test_dict_round_trip(self):
        result = _experiment()
        restored = ExperimentResult.from_dict(result.to_dict())
        assert restored == result
        np.testing.assert_array_equal(restored.eval_accuracy(), result.eval_accuracy())

    def test_file_round_trip(self, tmp_path):
        result = _experiment()
        path = result.save(tmp_path / "curve.json")
        restored = ExperimentResult.load(path)
        assert restored == result

    def test_empty_records_round_trip(self):
        result = ExperimentResult("s", "d")
        assert ExperimentResult.from_dict(result.to_dict()) == result


class TestAggregateResultSerialization:
    def test_dict_round_trip(self):
        agg = AggregateResult(
            strategy_name="random",
            dataset_name="cifar10",
            trials=[_experiment("random"), _experiment("random")],
        )
        restored = AggregateResult.from_dict(agg.to_dict())
        assert restored == agg
        np.testing.assert_allclose(
            restored.mean_eval_accuracy(), agg.mean_eval_accuracy()
        )

    def test_file_round_trip(self, tmp_path):
        agg = AggregateResult(
            strategy_name="random",
            dataset_name="cifar10",
            trials=[_experiment("random"), _experiment("random")],
        )
        path = agg.save(tmp_path / "agg.json")
        restored = AggregateResult.load(path)
        assert restored == agg

    def test_from_dict_validates_trials(self):
        with pytest.raises(ValueError):
            AggregateResult.from_dict(
                {"strategy_name": "s", "dataset_name": "d", "trials": []}
            )


class TestAtomicSaves:
    def test_save_leaves_no_temp_file(self, tmp_path):
        _experiment().save(tmp_path / "curve.json")
        assert [p.name for p in tmp_path.iterdir()] == ["curve.json"]

    def test_save_replaces_existing_file_atomically(self, tmp_path):
        path = tmp_path / "curve.json"
        _experiment(rounds=1).save(path)
        _experiment(rounds=5).save(path)
        assert len(ExperimentResult.load(path).records) == 5

    def test_truncated_file_fails_loudly(self, tmp_path):
        path = _experiment().save(tmp_path / "curve.json")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            ExperimentResult.load(path)

    def test_truncated_aggregate_fails_loudly(self, tmp_path):
        agg = AggregateResult(
            strategy_name="random",
            dataset_name="cifar10",
            trials=[_experiment("random")],
        )
        path = agg.save(tmp_path / "agg.json")
        path.write_text(path.read_text()[:10])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            AggregateResult.load(path)
