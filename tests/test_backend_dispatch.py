"""Tests for the pluggable array-backend dispatch layer.

Covers the registry (selection by name/spec/env), the NumPy backend's
promoted-linalg policy, the workspace buffer reuse, a guard that keeps the
algorithm layers free of direct ``numpy`` imports, and solver-level dispatch
parametrized over every backend available in the environment.  The optional
PyTorch backend has an opt-in smoke test (``pytest -m torch_backend``) that
skips cleanly when torch is not installed.
"""

from __future__ import annotations

import pathlib
import re

import numpy as np
import pytest
from scipy import linalg as sla

from repro import backend as backend_pkg
from repro.backend import (
    COMPUTE_DTYPE,
    ArrayBackend,
    NumpyBackend,
    Workspace,
    available_backends,
    backend_from_spec,
    get_backend,
    register_backend,
    set_backend,
    torch_available,
    use_backend,
)
from repro.core.config import RelaxConfig, RoundConfig
from repro.core.firal import ApproxFIRAL
from repro.fisher.matvec import hessian_sum_matvec
from repro.linalg.cg import conjugate_gradient
from tests.conftest import make_fisher_dataset

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Layers that must obtain all array math through the backend dispatch.
GUARDED_LAYERS = ("core", "fisher", "linalg")

class TestNumpyImportGuard:
    def test_algorithm_layers_have_no_direct_numpy_imports(self):
        """core/, fisher/ and linalg/ must route everything through the backend."""

        pattern = re.compile(r"^\s*(import numpy|from numpy\b)", re.MULTILINE)
        offenders = []
        for layer in GUARDED_LAYERS:
            for path in sorted((SRC_ROOT / layer).rglob("*.py")):
                if pattern.search(path.read_text()):
                    offenders.append(path.relative_to(SRC_ROOT).as_posix())
        assert offenders == [], f"direct numpy imports in guarded layers: {offenders}"

    def test_guarded_layers_have_no_direct_scipy_imports(self):
        """SciPy access is a backend implementation detail (eigh_generalized)."""

        pattern = re.compile(r"^\s*(import scipy|from scipy\b)", re.MULTILINE)
        offenders = []
        for layer in GUARDED_LAYERS:
            for path in sorted((SRC_ROOT / layer).rglob("*.py")):
                if pattern.search(path.read_text()):
                    offenders.append(path.relative_to(SRC_ROOT).as_posix())
        assert offenders == [], f"direct scipy imports in guarded layers: {offenders}"


class TestRegistry:
    def test_default_backend_is_numpy(self):
        backend = get_backend()
        assert backend.name == "numpy"
        assert backend.xp is np

    def test_numpy_is_always_available(self):
        assert "numpy" in available_backends()

    def test_backend_from_spec_parses_device(self):
        backend = backend_from_spec("numpy")
        assert isinstance(backend, NumpyBackend)

    def test_backend_from_spec_unknown_name(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            backend_from_spec("cupy")

    def test_set_backend_rejects_non_backend(self):
        with pytest.raises(TypeError):
            set_backend(42)

    def test_use_backend_restores_previous(self):
        previous = get_backend()
        replacement = NumpyBackend()
        with use_backend(replacement) as active:
            assert get_backend() is replacement
            assert active is replacement
        assert get_backend() is previous

    def test_use_backend_restores_on_exception(self):
        previous = get_backend()
        with pytest.raises(RuntimeError):
            with use_backend(NumpyBackend()):
                raise RuntimeError("boom")
        assert get_backend() is previous

    def test_register_backend_and_select_by_name(self):
        class Custom(NumpyBackend):
            name = "custom-np"

        register_backend("custom-np", lambda device: Custom())
        try:
            with use_backend("custom-np"):
                assert get_backend().name == "custom-np"
        finally:
            backend_pkg.registry._FACTORIES.pop("custom-np", None)
            backend_pkg.registry._AVAILABILITY.pop("custom-np", None)

    def test_env_var_spec_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        monkeypatch.setattr(backend_pkg.registry, "_active", None)
        assert get_backend().name == "numpy"

    def test_torch_spec_without_torch_raises_importerror(self):
        if torch_available():
            pytest.skip("torch installed; the guarded-import error path is inactive")
        with pytest.raises(ImportError, match="torch"):
            backend_from_spec("torch")


class TestDtypePolicy:
    def test_compute_dtype_is_float64(self):
        assert np.dtype(COMPUTE_DTYPE) == np.dtype(np.float64)
        assert get_backend().compute_dtype == np.dtype(np.float64)

    def test_ascompute_promotes_without_copy_when_possible(self):
        backend = get_backend()
        a = np.ones((3, 3), dtype=np.float64)
        assert backend.ascompute(a) is a
        b = np.ones((3, 3), dtype=np.float32)
        assert backend.ascompute(b).dtype == np.float64

    def test_promoted_linalg_matches_raw_numpy(self, rng):
        backend = get_backend()
        a = rng.standard_normal((5, 4, 4))
        spd = np.einsum("kij,klj->kil", a, a) + 4.0 * np.eye(4)
        spd32 = spd.astype(np.float32)

        inv = backend.inv(spd32, out_dtype=np.float32)
        assert inv.dtype == np.float32
        np.testing.assert_array_equal(
            inv, np.linalg.inv(spd32.astype(np.float64)).astype(np.float32)
        )
        np.testing.assert_array_equal(backend.cholesky(spd), np.linalg.cholesky(spd))
        np.testing.assert_array_equal(backend.eigvalsh(spd), np.linalg.eigvalsh(spd))
        b = rng.standard_normal((5, 4, 2))
        np.testing.assert_array_equal(backend.solve(spd, b), np.linalg.solve(spd, b))

    def test_eigh_generalized_matches_scipy(self, rng):
        backend = get_backend()
        a = rng.standard_normal((3, 5, 5))
        a = 0.5 * (a + a.transpose(0, 2, 1))
        b = rng.standard_normal((3, 5, 5))
        b = np.einsum("kij,klj->kil", b, b) + 5.0 * np.eye(5)
        got = backend.eigh_generalized(a, b)
        for k in range(3):
            np.testing.assert_array_equal(got[k], sla.eigh(a[k], b[k], eigvals_only=True))

    def test_generic_eigh_generalized_fallback_is_close(self, rng):
        backend = get_backend()
        a = rng.standard_normal((2, 4, 4))
        a = 0.5 * (a + a.transpose(0, 2, 1))
        b = rng.standard_normal((2, 4, 4))
        b = np.einsum("kij,klj->kil", b, b) + 4.0 * np.eye(4)
        fast = backend.eigh_generalized(a, b)
        generic = ArrayBackend.eigh_generalized(backend, a, b)
        np.testing.assert_allclose(generic, fast, rtol=1e-10, atol=1e-10)


class TestRngBridge:
    def test_rademacher_matches_legacy_draw(self):
        from repro.utils.random import rademacher as legacy

        backend = get_backend()
        a = backend.rademacher((7, 3), rng=np.random.default_rng(5))
        b = legacy((7, 3), rng=np.random.default_rng(5), dtype=np.float64)
        np.testing.assert_array_equal(a, b)
        assert set(np.unique(a)) <= {-1.0, 1.0}

    def test_rademacher_out_buffer_is_reused(self):
        backend = get_backend()
        buf = backend.empty((6, 2), dtype=COMPUTE_DTYPE)
        out = backend.rademacher((6, 2), rng=np.random.default_rng(0), out=buf)
        assert out is buf


class TestWorkspace:
    def test_same_key_returns_same_buffer(self):
        ws = Workspace(get_backend())
        a = ws.get("t", (4, 3), np.float64)
        b = ws.get("t", (4, 3), np.float64)
        assert a is b
        assert len(ws) == 1

    def test_distinct_names_and_shapes_do_not_alias(self):
        ws = Workspace(get_backend())
        a = ws.get("t", (4, 3), np.float64)
        b = ws.get("u", (4, 3), np.float64)
        c = ws.get("t", (5, 3), np.float64)
        assert a is not b and a is not c
        assert len(ws) == 3
        ws.clear()
        assert len(ws) == 0

    def test_hessian_matvec_with_workspace_matches_fresh(self, small_dataset, rng):
        ws = Workspace(get_backend())
        V = rng.standard_normal((small_dataset.joint_dimension, 4))
        w = rng.random(small_dataset.num_pool)
        fresh = hessian_sum_matvec(
            small_dataset.pool_features, small_dataset.pool_probabilities, V, weights=w
        )
        cold = hessian_sum_matvec(
            small_dataset.pool_features, small_dataset.pool_probabilities, V, weights=w,
            workspace=ws, tag="x",
        )
        # An empty Workspace is falsy (__len__), so this also guards against
        # `if workspace` truthiness bugs silently disabling the reuse path.
        assert len(ws) == 2, "workspace buffers were not engaged"
        # Equal up to fp reduction order: writing through reused buffers can
        # shift SIMD/BLAS summation by ~1 ULP (see RelaxConfig.reuse_buffers).
        np.testing.assert_allclose(np.asarray(cold), fresh, rtol=1e-12, atol=1e-12)
        warm = hessian_sum_matvec(
            small_dataset.pool_features, small_dataset.pool_probabilities, V, weights=w,
            workspace=ws, tag="x",
        )
        assert len(ws) == 2, "warm call should reuse, not grow, the workspace"
        np.testing.assert_allclose(np.asarray(warm), fresh, rtol=1e-12, atol=1e-12)

    def test_relax_buffer_reuse_preserves_selection(self, small_dataset):
        baseline = ApproxFIRAL(
            RelaxConfig(max_iterations=10, seed=0),
            RoundConfig(eta=1.0),
        ).select(small_dataset, 4)
        reused = ApproxFIRAL(
            RelaxConfig(max_iterations=10, seed=0, reuse_buffers=True),
            RoundConfig(eta=1.0),
        ).select(small_dataset, 4)
        np.testing.assert_array_equal(reused.selected_indices, baseline.selected_indices)


def _backend_params():
    return [pytest.param(name, id=name) for name in available_backends()]


class TestSolverDispatch:
    """Solver-level behavior parametrized over every available backend."""

    @pytest.mark.parametrize("backend_name", _backend_params())
    def test_conjugate_gradient_solves_spd_system(self, backend_name, rng):
        a = rng.standard_normal((12, 12))
        spd = a @ a.T + 12.0 * np.eye(12)
        rhs = rng.standard_normal((12, 3))
        expected = np.linalg.solve(spd, rhs)
        with use_backend(backend_name) as backend:
            spd_b = backend.from_host(spd)
            result = conjugate_gradient(
                lambda v: spd_b @ v, backend.from_host(rhs), rtol=1e-10, max_iterations=500
            )
            assert result.converged
            np.testing.assert_allclose(
                backend.to_numpy(result.solution), expected, rtol=1e-6, atol=1e-8
            )

    @pytest.mark.parametrize("backend_name", _backend_params())
    def test_approx_firal_selects_same_indices_on_every_backend(self, backend_name):
        reference = ApproxFIRAL(
            RelaxConfig(max_iterations=8, seed=0, track_objective="none"),
            RoundConfig(eta=1.0),
        ).select(make_fisher_dataset(seed=3), 3)
        with use_backend(backend_name):
            dataset = make_fisher_dataset(seed=3)
            result = ApproxFIRAL(
                RelaxConfig(max_iterations=8, seed=0, track_objective="none"),
                RoundConfig(eta=1.0),
            ).select(dataset, 3)
        np.testing.assert_array_equal(
            np.asarray(result.selected_indices), np.asarray(reference.selected_indices)
        )


@pytest.mark.torch_backend
@pytest.mark.skipif(not torch_available(), reason="torch not installed")
class TestTorchBackendSmoke:
    """Opt-in smoke tests for the PyTorch backend (``pytest -m torch_backend``)."""

    def test_namespace_roundtrip(self):
        with use_backend("torch") as backend:
            import torch

            arr = backend.asarray(np.arange(6, dtype=np.float32).reshape(2, 3))
            assert isinstance(arr, torch.Tensor)
            np.testing.assert_array_equal(
                backend.to_numpy(arr), np.arange(6, dtype=np.float32).reshape(2, 3)
            )
            w = backend.eigvalsh(backend.from_host(np.eye(3)))
            np.testing.assert_allclose(backend.to_numpy(w), np.ones(3))

    def test_select_matches_numpy_backend(self):
        numpy_result = ApproxFIRAL(
            RelaxConfig(max_iterations=8, seed=0, track_objective="none"),
            RoundConfig(eta=1.0),
        ).select(make_fisher_dataset(seed=3), 3)
        with use_backend("torch"):
            torch_result = ApproxFIRAL(
                RelaxConfig(max_iterations=8, seed=0, track_objective="none"),
                RoundConfig(eta=1.0),
            ).select(make_fisher_dataset(seed=3), 3)
        np.testing.assert_array_equal(
            np.asarray(torch_result.selected_indices),
            np.asarray(numpy_result.selected_indices),
        )
