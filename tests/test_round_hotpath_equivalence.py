"""Equivalence guarantees for the fused/amortized ROUND and RELAX hot paths.

The hot-path rework (fused shared-contraction scoring, chunked candidate
streaming, the η-grid precompute context, CG warm starts, preconditioner
refresh) is a pure performance change: on the NumPy backend the *selected
indices* must be bit-identical to the pre-optimization formulation, and the
relaxed solves must still satisfy the same tolerances.  These tests pin that:

* the fused kernel against a straight re-implementation of the original
  two-pass einsum scoring (``bilinear_form`` + ``quadratic_form``),
* chunked scoring and precompute-threaded grid search against their
  unchunked / per-trial-rebuild counterparts,
* warm-started CG iteration counts against the cold-started ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import get_backend
from repro.core.approx_relax import approx_relax
from repro.core.approx_round import RoundPrecompute, approx_round
from repro.core.config import RelaxConfig, RoundConfig
from repro.core.eta_selection import select_eta
from repro.core.exact_round import ExactRoundPrecompute, exact_round
from repro.linalg.sherman_morrison import fused_round_scores
from tests.conftest import make_fisher_dataset


@pytest.fixture
def dataset():
    return make_fisher_dataset(seed=42, num_pool=60, num_labeled=10, dimension=5, num_classes=4)


@pytest.fixture
def z_relaxed(dataset):
    rng = np.random.default_rng(7)
    z = rng.uniform(0, 1, size=dataset.num_pool)
    return 8.0 * z / z.sum()


def reference_scores(bt_inv, sigma_star, X, gammas, eta):
    """The pre-fusion two-pass formulation of the Proposition-4 objective.

    Verbatim re-implementation of the original ``block_rank_one_quadratic_forms``
    body: one ``bilinear_form`` pass for the numerator and an independent
    ``quadratic_form`` pass for the Sherman–Morrison denominator (the
    ``X B^{-1}`` contraction evaluated twice).
    """

    backend = get_backend()
    numerator = backend.ascompute(bt_inv.bilinear_form(X, sigma_star))
    quad = backend.ascompute(bt_inv.quadratic_form(X))
    denominator = 1.0 + eta * gammas * quad
    return backend.einsum("nk,nk->n", gammas, numerator / denominator)


class TestFusedScoring:
    def _state(self, dataset, z_relaxed):
        pre = RoundPrecompute.build(dataset, z_relaxed, RoundConfig(eta=1.0))
        bt_inv = (pre.sigma_star * np.sqrt(dataset.joint_dimension)).inverse()
        return pre, bt_inv

    def test_matches_pre_fusion_formulation(self, dataset, z_relaxed):
        pre, bt_inv = self._state(dataset, z_relaxed)
        eta = 1.3
        fused = fused_round_scores(bt_inv, pre.sigma_star, pre.X, pre.gammas, eta)
        reference = reference_scores(bt_inv, pre.sigma_star, pre.X, pre.gammas, eta)
        np.testing.assert_allclose(fused, reference, rtol=1e-12)
        # Selection is an argmax over the scores: same winner.
        assert int(np.argmax(fused)) == int(np.argmax(reference))

    @pytest.mark.parametrize("chunk_size", [1, 7, 59, 60, 1000])
    def test_chunked_scoring_equivalent(self, dataset, z_relaxed, chunk_size):
        """Chunked scores agree to solver precision and pick the same winner.

        (Raw scores are not bit-equal across chunk sizes: BLAS GEMM tiling
        depends on the row count, shifting summation order by ~1 ULP.  The
        *selection* — what the satellite pins — is the argmax, and the
        end-to-end index equality is covered by TestChunkedRoundSelection.)
        """

        pre, bt_inv = self._state(dataset, z_relaxed)
        full = fused_round_scores(bt_inv, pre.sigma_star, pre.X, pre.gammas, 1.0)
        chunked = fused_round_scores(
            bt_inv, pre.sigma_star, pre.X, pre.gammas, 1.0, chunk_size=chunk_size
        )
        np.testing.assert_allclose(np.asarray(full), np.asarray(chunked), rtol=1e-13)
        assert int(np.argmax(full)) == int(np.argmax(chunked))

    def test_workspace_reuse_bit_identical(self, dataset, z_relaxed):
        pre, bt_inv = self._state(dataset, z_relaxed)
        plain = fused_round_scores(bt_inv, pre.sigma_star, pre.X, pre.gammas, 1.0)
        reused = fused_round_scores(
            bt_inv, pre.sigma_star, pre.X, pre.gammas, 1.0, workspace=pre.workspace
        )
        again = fused_round_scores(
            bt_inv, pre.sigma_star, pre.X, pre.gammas, 1.0, workspace=pre.workspace
        )
        np.testing.assert_array_equal(np.asarray(plain), np.asarray(reused))
        np.testing.assert_array_equal(np.asarray(plain), np.asarray(again))


class TestChunkedRoundSelection:
    @pytest.mark.parametrize("chunk_size", [1, 13, 64])
    def test_selected_indices_bit_identical(self, dataset, z_relaxed, chunk_size):
        base = approx_round(dataset, z_relaxed, budget=6, eta=1.0)
        chunked = approx_round(
            dataset, z_relaxed, budget=6, eta=1.0,
            config=RoundConfig(eta=1.0, score_chunk_size=chunk_size),
        )
        np.testing.assert_array_equal(base.selected_indices, chunked.selected_indices)

    @pytest.mark.parametrize("chunk_size", [0, -1, 0.5, 13.7])
    def test_invalid_chunk_size_rejected(self, chunk_size):
        """Non-positive and fractional chunk sizes fail fast instead of
        silently truncating in the chunking arithmetic."""

        with pytest.raises(ValueError, match="score_chunk_size"):
            RoundConfig(score_chunk_size=chunk_size)

    def test_integral_float_chunk_size_accepted(self):
        # 13.0 == 13: integral-valued floats are unambiguous, so they pass.
        cfg = RoundConfig(score_chunk_size=13.0)
        assert int(cfg.score_chunk_size) == 13


class TestPrecomputeThreading:
    def test_shared_precompute_matches_per_trial_rebuild(self, dataset, z_relaxed):
        """The hoisted η grid must select exactly what per-trial rebuilds select."""

        grid = (0.5, 1.0, 4.0)
        cfg = RoundConfig()
        hoisted, hoisted_score = select_eta(
            approx_round, dataset, z_relaxed, budget=5, eta_grid=grid, config=cfg
        )
        # Per-trial rebuild: call the solver directly for each η (each call
        # builds and discards its own precompute), then apply the same rule.
        from repro.core.approx_round import selected_batch_min_eigenvalue

        per_trial = {
            eta: approx_round(dataset, z_relaxed, 5, eta, cfg) for eta in grid
        }
        best_eta = max(
            grid,
            key=lambda e: selected_batch_min_eigenvalue(dataset, per_trial[e].selected_indices),
        )
        np.testing.assert_array_equal(
            hoisted.selected_indices, per_trial[best_eta].selected_indices
        )
        assert hoisted.eta == best_eta
        assert hoisted_score == pytest.approx(
            selected_batch_min_eigenvalue(dataset, per_trial[best_eta].selected_indices)
        )

    def test_explicit_precompute_reuse(self, dataset, z_relaxed):
        cfg = RoundConfig()
        pre = RoundPrecompute.build(dataset, z_relaxed, cfg)
        direct = approx_round(dataset, z_relaxed, 4, 1.0, cfg)
        threaded = approx_round(dataset, z_relaxed, 4, 1.0, cfg, precompute=pre)
        threaded_again = approx_round(dataset, z_relaxed, 4, 1.0, cfg, precompute=pre)
        np.testing.assert_array_equal(direct.selected_indices, threaded.selected_indices)
        np.testing.assert_array_equal(direct.selected_indices, threaded_again.selected_indices)

    def test_mismatched_precompute_rejected(self, dataset, z_relaxed):
        other = make_fisher_dataset(seed=9, num_pool=13, num_labeled=6, dimension=5, num_classes=4)
        pre = RoundPrecompute.build(other, np.full(13, 0.3), RoundConfig())
        with pytest.raises(ValueError):
            approx_round(dataset, z_relaxed, 3, 1.0, RoundConfig(), precompute=pre)

    def test_stale_precompute_for_different_weights_rejected(self, dataset, z_relaxed):
        """Same pool, different RELAX output: the context must not be silently
        reused (sigma_star would correspond to the stale weights)."""

        pre = RoundPrecompute.build(dataset, z_relaxed, RoundConfig())
        other_z = np.roll(np.asarray(z_relaxed), 1)
        with pytest.raises(ValueError):
            approx_round(dataset, other_z, 3, 1.0, RoundConfig(), precompute=pre)
        exact_pre = ExactRoundPrecompute.build(dataset, z_relaxed, RoundConfig())
        with pytest.raises(ValueError):
            exact_round(dataset, other_z, 3, 1.0, RoundConfig(), precompute=exact_pre)

    def test_exact_round_precompute_matches(self):
        tiny = make_fisher_dataset(seed=3, num_pool=14, num_labeled=6, dimension=3, num_classes=3)
        rng = np.random.default_rng(1)
        z = rng.uniform(0, 1, size=14)
        z = 4.0 * z / z.sum()
        cfg = RoundConfig()
        pre = ExactRoundPrecompute.build(tiny, z, cfg)
        direct = exact_round(tiny, z, 3, 1.0, cfg)
        threaded = exact_round(tiny, z, 3, 1.0, cfg, precompute=pre)
        np.testing.assert_array_equal(direct.selected_indices, threaded.selected_indices)

    def test_exact_round_grid_search_uses_precompute(self):
        tiny = make_fisher_dataset(seed=4, num_pool=12, num_labeled=6, dimension=3, num_classes=3)
        rng = np.random.default_rng(2)
        z = rng.uniform(0, 1, size=12)
        z = 3.0 * z / z.sum()
        result, score = select_eta(exact_round, tiny, z, budget=3, eta_grid=(0.5, 2.0))
        assert result.eta in (0.5, 2.0)
        assert np.isfinite(score)


class TestWarmStartCG:
    def _config(self, warm: bool, **kw):
        return RelaxConfig(
            max_iterations=8, track_objective="none", seed=0, cg_warm_start=warm, **kw
        )

    def test_iteration_counts_do_not_increase_across_steps(self, dataset):
        """Warm-started solve sequences need no more CG iterations per step.

        This pins the regime warm starts are built for: the operator
        ``Sigma_z`` drifts slowly across mirror-descent steps while the
        right-hand side stays correlated (here: fixed probes, the frozen-probe
        Line-6 sequence).  Each solve warm-starts from the previous solution;
        iteration counts must never exceed the cold first solve, and the
        warm tail must beat cold solves of the same systems.
        """

        from repro.backend import COMPUTE_DTYPE, get_backend
        from repro.fisher.operators import SigmaOperator
        from repro.linalg.cg import conjugate_gradient

        backend = get_backend()
        rng = np.random.default_rng(0)
        n = dataset.num_pool
        probes = backend.rademacher((dataset.joint_dimension, 6), rng=rng, dtype=COMPUTE_DTYPE)
        z = np.full(n, 6.0 / n)
        drift = rng.uniform(0.9, 1.1, size=n)

        warm_counts, cold_counts = [], []
        x0 = None
        for step in range(6):
            operator = SigmaOperator(dataset, z, regularization=1e-6)
            warm = conjugate_gradient(
                operator.matvec, probes, preconditioner=operator.precondition,
                x0=x0, rtol=1e-3, max_iterations=500,
            )
            cold = conjugate_gradient(
                operator.matvec, probes, preconditioner=operator.precondition,
                rtol=1e-3, max_iterations=500,
            )
            warm_counts.append(warm.iterations)
            cold_counts.append(cold.iterations)
            x0 = warm.solution
            z = z * drift
            z = 6.0 * z / z.sum()

        assert all(later <= warm_counts[0] for later in warm_counts[1:])
        # After the first (cold) solve, warm starting strictly pays.
        assert sum(warm_counts[1:]) < sum(cold_counts[1:])

    def test_warm_start_off_by_default(self, dataset):
        """Fresh per-iteration Rademacher probes decorrelate consecutive
        right-hand sides, so warm starting is opt-in (see RelaxConfig) and the
        default trajectory stays cold-started / bit-reproducible."""

        assert RelaxConfig().cg_warm_start is False
        cold = approx_relax(dataset, budget=6, config=self._config(False))
        assert len(cold.cg_iteration_history) == cold.iterations
        assert sum(cold.cg_iteration_history) == cold.cg_iterations

    def test_warm_and_cold_agree_on_weights(self, dataset):
        """Both solve to the same CG tolerance, so the relaxed weights agree
        to solver accuracy."""

        warm = approx_relax(dataset, budget=6, config=self._config(True, cg_tolerance=1e-6))
        cold = approx_relax(dataset, budget=6, config=self._config(False, cg_tolerance=1e-6))
        np.testing.assert_allclose(warm.weights, cold.weights, rtol=1e-4, atol=1e-7)


class TestPreconditionerRefresh:
    def test_refresh_every_one_is_default_trajectory(self, dataset):
        base = approx_relax(
            dataset, budget=5,
            config=RelaxConfig(max_iterations=6, track_objective="none", seed=2),
        )
        explicit = approx_relax(
            dataset, budget=5,
            config=RelaxConfig(
                max_iterations=6, track_objective="none", seed=2, precond_refresh_every=1
            ),
        )
        np.testing.assert_array_equal(np.asarray(base.weights), np.asarray(explicit.weights))

    @pytest.mark.parametrize("every", [2, 3])
    def test_stale_preconditioner_still_converges(self, dataset, every):
        base = approx_relax(
            dataset, budget=5,
            config=RelaxConfig(max_iterations=6, track_objective="none", seed=2),
        )
        stale = approx_relax(
            dataset, budget=5,
            config=RelaxConfig(
                max_iterations=6, track_objective="none", seed=2, precond_refresh_every=every
            ),
        )
        assert np.all(np.asarray(stale.weights) >= 0)
        assert float(np.asarray(stale.weights).sum()) == pytest.approx(5.0, rel=1e-8)
        # The preconditioner only steers CG convergence; the weights stay close.
        np.testing.assert_allclose(stale.weights, base.weights, rtol=0.2, atol=1e-4)

    def test_invalid_refresh_rejected(self):
        with pytest.raises(ValueError):
            RelaxConfig(precond_refresh_every=0)
