"""Tests for the block-diagonal ROUND solver (Algorithm 3, Proposition 4)."""

import numpy as np
import pytest

from repro.core.config import RoundConfig
from repro.core.approx_round import approx_round, selected_batch_min_eigenvalue
from repro.fisher.operators import FisherDataset
from tests.conftest import make_fisher_dataset, random_probabilities


@pytest.fixture
def dataset():
    return make_fisher_dataset(seed=10, num_pool=30, num_labeled=8, dimension=4, num_classes=3)


@pytest.fixture
def z_relaxed(dataset):
    rng = np.random.default_rng(1)
    z = rng.uniform(0, 1, size=dataset.num_pool)
    return 5.0 * z / z.sum()


class TestApproxRound:
    def test_selects_requested_budget(self, dataset, z_relaxed):
        result = approx_round(dataset, z_relaxed, budget=5, eta=1.0)
        assert len(result.selected_indices) == 5

    def test_indices_unique_and_in_range(self, dataset, z_relaxed):
        result = approx_round(dataset, z_relaxed, budget=6, eta=1.0)
        assert len(np.unique(result.selected_indices)) == 6
        assert np.all((result.selected_indices >= 0) & (result.selected_indices < dataset.num_pool))

    def test_deterministic(self, dataset, z_relaxed):
        a = approx_round(dataset, z_relaxed, budget=4, eta=1.0)
        b = approx_round(dataset, z_relaxed, budget=4, eta=1.0)
        np.testing.assert_array_equal(a.selected_indices, b.selected_indices)

    def test_objective_trace_positive(self, dataset, z_relaxed):
        result = approx_round(dataset, z_relaxed, budget=4, eta=1.0)
        assert all(v > 0 for v in result.objective_trace)

    def test_timings_components(self, dataset, z_relaxed):
        """The hot loop is attributed to named regions (no lumped "other")."""

        result = approx_round(dataset, z_relaxed, budget=3, eta=1.0)
        for region in ("setup", "score", "update_accumulated", "compute_eigenvalues", "refresh_inverse"):
            assert result.timings.get(region) > 0, region
        assert result.timings.get("other") == 0.0

    def test_invalid_inputs_rejected(self, dataset, z_relaxed):
        with pytest.raises(ValueError):
            approx_round(dataset, z_relaxed, budget=0, eta=1.0)
        with pytest.raises(ValueError):
            approx_round(dataset, z_relaxed, budget=2, eta=-1.0)
        with pytest.raises(ValueError):
            approx_round(dataset, np.ones(3), budget=2, eta=1.0)

    def test_selection_covers_diverse_points(self, dataset, z_relaxed):
        """The FTRL objective discourages picking near-duplicate points; at the
        very least the selected batch must not collapse onto one index."""

        result = approx_round(dataset, z_relaxed, budget=6, eta=1.0)
        assert len(set(result.selected_indices.tolist())) == 6


class TestBatchMinEigenvalue:
    def test_positive_for_reasonable_batch(self, dataset):
        score = selected_batch_min_eigenvalue(dataset, np.arange(10))
        assert np.isfinite(score)

    def test_more_points_do_not_decrease_min_eigenvalue(self, dataset):
        small = selected_batch_min_eigenvalue(dataset, np.arange(5))
        large = selected_batch_min_eigenvalue(dataset, np.arange(25))
        assert large >= small - 1e-10

    def test_empty_selection_rejected(self, dataset):
        with pytest.raises(ValueError):
            selected_batch_min_eigenvalue(dataset, np.array([], dtype=np.int64))


class TestProposition4Equivalence:
    def test_matches_exact_round_when_hessians_are_block_diagonal(self):
        """Proposition 4: with block-diagonal Fisher matrices the diagonal
        ROUND step is *equivalent* to the exact trace-objective ROUND step.

        Construct a dataset whose per-point Hessians are exactly block
        diagonal by using one-hot-dominated probability vectors?  That cannot
        make the off-diagonal h h^T term vanish, so instead verify the
        equivalence at the *objective* level: the point chosen by Eq. 17 must
        coincide with the argmin of Eq. 9 evaluated with block-diagonalized
        Hessians (B(H_i) in place of H_i)."""

        rng = np.random.default_rng(3)
        d, c, n, m, budget, eta = 3, 3, 15, 5, 3, 1.2
        dataset = FisherDataset(
            pool_features=rng.standard_normal((n, d)),
            pool_probabilities=random_probabilities(rng, n, c),
            labeled_features=rng.standard_normal((m, d)),
            labeled_probabilities=random_probabilities(rng, m, c),
        )
        z = np.full(n, budget / n)

        approx = approx_round(dataset, z, budget=budget, eta=eta, config=RoundConfig(eta=eta, regularization=1e-8))

        # Brute-force the first selection of the *block-diagonalized* exact
        # objective: Trace[(B_t + eta B(H_i))^{-1} Sigma_*] (Eq. 18) with
        # B_t = sqrt(dc) Sigma_* + (eta/b) B(H_o).
        from repro.fisher.hessian import point_block_coefficients

        sigma = dataset.sigma_block_diagonal(z).add_identity(1e-8)
        labeled = dataset.labeled_block_diagonal()
        bt = sigma * np.sqrt(d * c) + labeled * (eta / budget)
        gammas = point_block_coefficients(dataset.pool_probabilities)
        scores = []
        for i in range(n):
            blocks = bt.blocks.copy()
            for k in range(c):
                blocks[k] = blocks[k] + eta * gammas[i, k] * np.outer(
                    dataset.pool_features[i], dataset.pool_features[i]
                )
            inv = np.linalg.inv(blocks)
            scores.append(float(np.einsum("kij,kji->", inv, sigma.blocks)))
        assert approx.selected_indices[0] == int(np.argmin(scores))
