"""Tests for the block-wise Sherman–Morrison update (Lemma 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.block_diag import BlockDiagonalMatrix
from repro.linalg.sherman_morrison import (
    block_rank_one_inverse_update,
    block_rank_one_quadratic_forms,
)


def random_spd_blocks(rng, c, d):
    A = rng.standard_normal((c, d, d))
    return np.einsum("kij,klj->kil", A, A) + np.eye(d)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestInverseUpdate:
    def test_matches_dense_inverse(self, rng):
        """Lemma 3: the updated inverse equals inverting A + diag(gamma) ⊗ xx^T."""

        c, d = 3, 5
        A = BlockDiagonalMatrix(random_spd_blocks(rng, c, d))
        x = rng.standard_normal(d)
        gamma = rng.uniform(0.1, 2.0, size=c)
        updated_inv = block_rank_one_inverse_update(A.inverse(), x, gamma)

        dense_update = A.to_dense() + np.kron(np.diag(gamma), np.outer(x, x))
        np.testing.assert_allclose(
            updated_inv.to_dense(), np.linalg.inv(dense_update), rtol=1e-8, atol=1e-10
        )

    def test_zero_gamma_is_identity_update(self, rng):
        c, d = 2, 4
        A = BlockDiagonalMatrix(random_spd_blocks(rng, c, d))
        a_inv = A.inverse()
        updated = block_rank_one_inverse_update(a_inv, rng.standard_normal(d), np.zeros(c))
        np.testing.assert_allclose(updated.blocks, a_inv.blocks, rtol=1e-12)

    def test_negative_gamma_preserving_definiteness(self, rng):
        """Lemma 3 also covers negative gamma as long as the result stays PD."""

        c, d = 2, 3
        A = BlockDiagonalMatrix(random_spd_blocks(rng, c, d))
        x = 0.1 * rng.standard_normal(d)
        gamma = np.array([-0.1, -0.05])
        updated = block_rank_one_inverse_update(A.inverse(), x, gamma)
        dense_update = A.to_dense() + np.kron(np.diag(gamma), np.outer(x, x))
        np.testing.assert_allclose(
            updated.to_dense(), np.linalg.inv(dense_update), rtol=1e-6, atol=1e-9
        )

    def test_wrong_shapes_rejected(self, rng):
        A = BlockDiagonalMatrix(random_spd_blocks(rng, 2, 3))
        with pytest.raises(ValueError):
            block_rank_one_inverse_update(A.inverse(), np.zeros(4), np.zeros(2))
        with pytest.raises(ValueError):
            block_rank_one_inverse_update(A.inverse(), np.zeros(3), np.zeros(3))


class TestQuadraticForms:
    def test_matches_explicit_formula(self, rng):
        """Eq. 17 objective computed via the helper equals an explicit loop."""

        c, d, n = 3, 4, 6
        eta = 0.7
        bt = BlockDiagonalMatrix(random_spd_blocks(rng, c, d))
        sigma = BlockDiagonalMatrix(random_spd_blocks(rng, c, d))
        bt_inv, sigma_inv = bt.inverse(), sigma.inverse()
        X = rng.standard_normal((n, d))
        gammas = rng.uniform(0.0, 0.25, size=(n, c))

        scores = block_rank_one_quadratic_forms(bt_inv, sigma_inv, X, gammas, eta)

        expected = np.zeros(n)
        for i in range(n):
            for k in range(c):
                binv = np.linalg.inv(bt.blocks[k])
                sinv = np.linalg.inv(sigma.blocks[k])
                numer = X[i] @ binv @ sinv @ binv @ X[i]
                denom = 1.0 + eta * gammas[i, k] * (X[i] @ binv @ X[i])
                expected[i] += gammas[i, k] * numer / denom
        np.testing.assert_allclose(scores, expected, rtol=1e-6)

    def test_invalid_eta_rejected(self, rng):
        bt = BlockDiagonalMatrix(random_spd_blocks(rng, 2, 3)).inverse()
        sigma = BlockDiagonalMatrix(random_spd_blocks(rng, 2, 3)).inverse()
        with pytest.raises(ValueError):
            block_rank_one_quadratic_forms(bt, sigma, np.zeros((2, 3)), np.zeros((2, 2)), eta=0.0)

    def test_gamma_shape_mismatch_rejected(self, rng):
        bt = BlockDiagonalMatrix(random_spd_blocks(rng, 2, 3)).inverse()
        sigma = BlockDiagonalMatrix(random_spd_blocks(rng, 2, 3)).inverse()
        with pytest.raises(ValueError):
            block_rank_one_quadratic_forms(bt, sigma, np.zeros((2, 3)), np.zeros((2, 3)), eta=1.0)


@settings(max_examples=20, deadline=None)
@given(
    c=st.integers(min_value=1, max_value=3),
    d=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_sherman_morrison_matches_dense(c, d, seed):
    """Lemma 3 equals the dense inverse for random SPD blocks and updates."""

    rng = np.random.default_rng(seed)
    A = BlockDiagonalMatrix(random_spd_blocks(rng, c, d))
    x = rng.standard_normal(d)
    gamma = rng.uniform(0.0, 1.0, size=c)
    updated_inv = block_rank_one_inverse_update(A.inverse(), x, gamma)
    dense_update = A.to_dense() + np.kron(np.diag(gamma), np.outer(x, x))
    np.testing.assert_allclose(
        updated_inv.to_dense(), np.linalg.inv(dense_update), rtol=1e-6, atol=1e-8
    )
