"""Tests for the MPI-like communicator protocol and its traffic log.

The collectives are exercised through :func:`repro.parallel.launcher.run_spmd`
over the simulated (thread) transport — the same way the distributed solvers
drive them — so the rendezvous protocol itself is under test, not just the
combine arithmetic.  The shared-memory (process) transport is covered in
``tests/test_parallel_launcher.py`` under the ``multiprocess`` marker.
"""

import numpy as np
import pytest

from repro.parallel.comm import (
    CommProtocolError,
    CommunicationLog,
    SimulatedComm,
    create_communicators,
)
from repro.parallel.launcher import run_spmd


def spmd(body, num_ranks):
    """Run ``body(comm, rank)`` over ``num_ranks`` simulated ranks."""

    return run_spmd(body, list(range(num_ranks)))


class TestCommunicationLog:
    def test_record_accumulates(self):
        log = CommunicationLog()
        log.record("allreduce", 100)
        log.record("allreduce", 50)
        log.record("bcast", 10)
        assert log.calls["allreduce"] == 2
        assert log.bytes_moved["allreduce"] == 150
        assert log.total_calls() == 3
        assert log.total_bytes() == 160

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CommunicationLog().record("bcast", -1)

    def test_merge(self):
        a = CommunicationLog({"bcast": 1}, {"bcast": 8})
        b = CommunicationLog({"bcast": 2, "allgather": 1}, {"bcast": 16, "allgather": 4})
        merged = a.merge(b)
        assert merged.calls == {"bcast": 3, "allgather": 1}
        assert merged.bytes_moved == {"bcast": 24, "allgather": 4}

    def test_merge_is_associative_and_leaves_inputs_untouched(self):
        """Merging rank logs must not depend on the launcher's merge order."""

        a = CommunicationLog({"allreduce": 1}, {"allreduce": 8})
        b = CommunicationLog({"allreduce": 2, "bcast": 1}, {"allreduce": 16, "bcast": 4})
        c = CommunicationLog({"bcast": 3, "allgather": 5}, {"bcast": 12, "allgather": 40})
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.as_dict() == right.as_dict()
        # merge returns a new log; the operands keep their own counters.
        assert a.calls == {"allreduce": 1}
        assert b.bytes_moved == {"allreduce": 16, "bcast": 4}

    def test_as_dict(self):
        log = CommunicationLog()
        log.record("allgather", 7)
        assert log.as_dict() == {"calls": {"allgather": 1}, "bytes": {"allgather": 7}}


class TestAllreduce:
    def test_sum(self):
        def body(comm, rank):
            return comm.allreduce((rank + 1) * np.ones(4))

        outputs = spmd(body, 3)
        for out in outputs:
            np.testing.assert_array_equal(out, 6 * np.ones(4))

    def test_max_and_min(self):
        parts = [np.array([1.0, 5.0]), np.array([3.0, 2.0])]

        def body(comm, rank):
            return (
                comm.allreduce(parts[rank], op="max"),
                comm.allreduce(parts[rank], op="min"),
            )

        outputs = spmd(body, 2)
        for mx, mn in outputs:
            np.testing.assert_array_equal(mx, [3.0, 5.0])
            np.testing.assert_array_equal(mn, [1.0, 2.0])

    def test_unknown_op_rejected(self):
        def body(comm, rank):
            return comm.allreduce(np.ones(2), op="prod")

        with pytest.raises(ValueError, match="unsupported allreduce op"):
            spmd(body, 2)

    def test_shape_mismatch_rejected(self):
        """Ranks posting different shapes is a hard error, not a silent pad."""

        def body(comm, rank):
            return comm.allreduce(np.ones(2 + rank))

        with pytest.raises(ValueError, match="share a shape"):
            spmd(body, 2)

    def test_logged_once_per_collective(self):
        def body(comm, rank):
            comm.allreduce(np.ones(4))
            return comm.log

        log = spmd(body, 3)[0]
        assert log.calls == {"allreduce": 1}
        assert log.bytes_moved == {"allreduce": np.ones(4).nbytes}


class TestAllgatherAndBcast:
    def test_allgather_concatenates_in_rank_order(self):
        parts = [np.array([0, 1]), np.array([2]), np.array([3, 4])]

        def body(comm, rank):
            return comm.allgather(np.asarray(parts[rank], dtype=np.float64))

        outputs = spmd(body, 3)
        for out in outputs:
            np.testing.assert_array_equal(out, [0, 1, 2, 3, 4])

    def test_allgather_logs_total_traffic(self):
        def body(comm, rank):
            comm.allgather(np.ones(rank + 1))
            return comm.log

        log = spmd(body, 2)[0]
        assert log.calls["allgather"] == 1
        assert log.bytes_moved["allgather"] == np.ones(1).nbytes + np.ones(2).nbytes

    def test_bcast_from_nonzero_root(self):
        value = np.arange(6, dtype=np.float32)

        def body(comm, rank):
            out = comm.bcast(value if rank == 1 else None, root=1)
            return out, comm.log

        outputs = spmd(body, 3)
        for out, log in outputs:
            np.testing.assert_array_equal(out, value)
            assert log.bytes_moved["bcast"] == value.nbytes

    def test_bcast_root_must_provide_value(self):
        def body(comm, rank):
            return comm.bcast(None, root=0)

        with pytest.raises(ValueError, match="root must provide a value"):
            spmd(body, 2)

    def test_bcast_root_out_of_range(self):
        def body(comm, rank):
            return comm.bcast(np.ones(1), root=5)

        with pytest.raises(ValueError, match="root out of range"):
            spmd(body, 2)


class TestArgmaxAllreduce:
    def test_picks_global_winner(self):
        values = [1.0, 7.0, 3.0]
        indices = [10, 20, 30]

        def body(comm, rank):
            return comm.argmax_allreduce(values[rank], indices[rank])

        for owner, index, value in spmd(body, 3):
            assert (owner, index, value) == (1, 20, 7.0)

    def test_ties_resolve_to_lowest_rank(self):
        """MPI MAXLOC semantics: equal maxima belong to the smallest rank.

        Pinned explicitly — resolving ties by a backend ``argmax`` would make
        the winner depend on the array library's unspecified tie behavior.
        """

        values = [5.0, 5.0, 5.0]
        indices = [11, 22, 33]

        def body(comm, rank):
            return comm.argmax_allreduce(values[rank], indices[rank])

        for owner, index, value in spmd(body, 3):
            assert (owner, index, value) == (0, 11, 5.0)

    def test_tie_on_later_ranks_only(self):
        values = [1.0, 4.0, 4.0]

        def body(comm, rank):
            return comm.argmax_allreduce(values[rank], 100 + rank)

        for owner, index, value in spmd(body, 3):
            assert (owner, index, value) == (1, 101, 4.0)

    def test_traffic_charged_as_value_plus_index_per_rank(self):
        def body(comm, rank):
            comm.argmax_allreduce(float(rank), rank)
            return comm.log

        log = spmd(body, 3)[0]
        # One float64 value + one int64 index per rank, same as the
        # shared-memory transport charges.
        assert log.bytes_moved["allreduce"] == 3 * 16


class TestProtocol:
    def test_divergent_collectives_raise(self):
        """A rank calling a different collective than its peers must fail loudly."""

        def body(comm, rank):
            if rank == 0:
                return comm.allreduce(np.ones(2))
            return comm.bcast(np.ones(2), root=1)

        with pytest.raises(CommProtocolError, match="diverged"):
            spmd(body, 2)

    def test_failing_rank_propagates_original_error(self):
        def body(comm, rank):
            if rank == 1:
                raise RuntimeError("rank 1 exploded")
            comm.allreduce(np.ones(2))

        with pytest.raises(RuntimeError, match="rank 1 exploded"):
            spmd(body, 2)

    def test_unmatched_collective_times_out_instead_of_hanging(self):
        """A rank whose peers already returned must fail, not freeze the run."""

        from repro.parallel.comm import CommAbortedError

        def body(comm, rank):
            if rank == 0:
                comm.barrier()  # rank 1 never posts the matching collective
            return rank

        with pytest.raises(CommAbortedError, match="unmatched"):
            run_spmd(body, [0, 1], timeout=0.5)

    def test_barrier_moves_no_data(self):
        def body(comm, rank):
            comm.barrier()
            return comm.log

        log = spmd(body, 2)[0]
        assert log.total_bytes() == 0
        assert log.total_calls() == 0


class TestSingleRank:
    """With one rank every collective is the identity and runs inline."""

    def test_collectives_degenerate(self):
        def body(comm, rank):
            s = comm.allreduce(np.array([2.0, 3.0]))
            g = comm.allgather(np.array([1.0]))
            b = comm.bcast(np.array([9.0]))
            owner, index, value = comm.argmax_allreduce(4.0, 7)
            comm.barrier()
            return s, g, b, (owner, index, value)

        s, g, b, winner = spmd(body, 1)[0]
        np.testing.assert_array_equal(s, [2.0, 3.0])
        np.testing.assert_array_equal(g, [1.0])
        np.testing.assert_array_equal(b, [9.0])
        assert winner == (0, 7, 4.0)


class TestCommunicatorHandles:
    def test_create_communicators_shares_log(self):
        comms = create_communicators(3)
        assert len(comms) == 3
        assert all(isinstance(c, SimulatedComm) for c in comms)
        assert all(c.size == 3 for c in comms)
        assert comms[0].log is comms[1].log is comms[2].log
        assert [c.rank for c in comms] == [0, 1, 2]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            create_communicators(0)
