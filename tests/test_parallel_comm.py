"""Tests for the simulated MPI communicator and its traffic log."""

import numpy as np
import pytest

from repro.parallel.comm import CommunicationLog, SimulatedComm, create_communicators


class TestCommunicationLog:
    def test_record_accumulates(self):
        log = CommunicationLog()
        log.record("allreduce", 100)
        log.record("allreduce", 50)
        log.record("bcast", 10)
        assert log.calls["allreduce"] == 2
        assert log.bytes_moved["allreduce"] == 150
        assert log.total_calls() == 3
        assert log.total_bytes() == 160

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CommunicationLog().record("bcast", -1)

    def test_merge(self):
        a = CommunicationLog({"bcast": 1}, {"bcast": 8})
        b = CommunicationLog({"bcast": 2, "allgather": 1}, {"bcast": 16, "allgather": 4})
        merged = a.merge(b)
        assert merged.calls == {"bcast": 3, "allgather": 1}
        assert merged.bytes_moved == {"bcast": 24, "allgather": 4}

    def test_as_dict(self):
        log = CommunicationLog()
        log.record("allgather", 7)
        assert log.as_dict() == {"calls": {"allgather": 1}, "bytes": {"allgather": 7}}


class TestCollectives:
    def test_allreduce_sum(self):
        log = CommunicationLog()
        out = SimulatedComm.allreduce([np.ones(4), 2 * np.ones(4), 3 * np.ones(4)], log)
        np.testing.assert_array_equal(out, 6 * np.ones(4))
        assert log.calls["allreduce"] == 1
        assert log.bytes_moved["allreduce"] == np.ones(4).nbytes

    def test_allreduce_max_and_min(self):
        log = CommunicationLog()
        parts = [np.array([1.0, 5.0]), np.array([3.0, 2.0])]
        np.testing.assert_array_equal(SimulatedComm.allreduce(parts, log, op="max"), [3.0, 5.0])
        np.testing.assert_array_equal(SimulatedComm.allreduce(parts, log, op="min"), [1.0, 2.0])

    def test_allreduce_unknown_op(self):
        with pytest.raises(ValueError):
            SimulatedComm.allreduce([np.ones(2)], CommunicationLog(), op="prod")

    def test_allreduce_shape_mismatch(self):
        with pytest.raises(ValueError):
            SimulatedComm.allreduce([np.ones(2), np.ones(3)], CommunicationLog())

    def test_allgather_concatenates_in_rank_order(self):
        log = CommunicationLog()
        out = SimulatedComm.allgather([np.array([0, 1]), np.array([2]), np.array([3, 4])], log)
        np.testing.assert_array_equal(out, [0, 1, 2, 3, 4])
        assert log.calls["allgather"] == 1

    def test_bcast_returns_value_and_logs(self):
        log = CommunicationLog()
        value = np.arange(6, dtype=np.float32)
        out = SimulatedComm.bcast(value, log)
        np.testing.assert_array_equal(out, value)
        assert log.bytes_moved["bcast"] == value.nbytes

    def test_argmax_allreduce_picks_global_winner(self):
        log = CommunicationLog()
        owner, index, value = SimulatedComm.argmax_allreduce(
            [1.0, 7.0, 3.0], [10, 20, 30], log
        )
        assert owner == 1
        assert index == 20
        assert value == 7.0

    def test_argmax_allreduce_length_mismatch(self):
        with pytest.raises(ValueError):
            SimulatedComm.argmax_allreduce([1.0], [1, 2], CommunicationLog())


class TestCommunicatorHandles:
    def test_create_communicators_shares_log(self):
        comms = create_communicators(3)
        assert len(comms) == 3
        assert all(c.size == 3 for c in comms)
        assert comms[0].log is comms[1].log is comms[2].log
        assert [c.rank for c in comms] == [0, 1, 2]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            create_communicators(0)
