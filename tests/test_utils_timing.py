"""Tests for the timing utilities."""

import pytest

from repro.utils.timing import Timer, TimingBreakdown, timed_region


class TestTimer:
    def test_start_stop_accumulates(self):
        timer = Timer()
        timer.start()
        elapsed = timer.stop()
        assert elapsed >= 0.0
        assert timer.elapsed == elapsed

    def test_double_start_raises(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError):
            timer.start()
        timer.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer.measure():
            pass
        timer.reset()
        assert timer.elapsed == 0.0

    def test_measure_context_manager(self):
        timer = Timer()
        with timer.measure():
            sum(range(1000))
        assert timer.elapsed > 0.0


class TestTimingBreakdown:
    def test_add_and_total(self):
        breakdown = TimingBreakdown()
        breakdown.add("cg", 1.0)
        breakdown.add("cg", 0.5)
        breakdown.add("gradient", 2.0)
        assert breakdown.get("cg") == pytest.approx(1.5)
        assert breakdown.total() == pytest.approx(3.5)

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            TimingBreakdown().add("cg", -1.0)

    def test_region_accumulates(self):
        breakdown = TimingBreakdown()
        with breakdown.region("work"):
            sum(range(1000))
        assert breakdown.get("work") > 0.0

    def test_get_missing_component_is_zero(self):
        assert TimingBreakdown().get("missing") == 0.0

    def test_merge(self):
        a = TimingBreakdown({"cg": 1.0})
        b = TimingBreakdown({"cg": 2.0, "other": 3.0})
        merged = a.merge(b)
        assert merged.get("cg") == pytest.approx(3.0)
        assert merged.get("other") == pytest.approx(3.0)
        # operands untouched
        assert a.get("cg") == pytest.approx(1.0)

    def test_as_dict_is_copy(self):
        breakdown = TimingBreakdown({"cg": 1.0})
        d = breakdown.as_dict()
        d["cg"] = 99.0
        assert breakdown.get("cg") == pytest.approx(1.0)


def test_timed_region_with_none_is_noop():
    with timed_region(None, "anything"):
        pass


def test_timed_region_records():
    breakdown = TimingBreakdown()
    with timed_region(breakdown, "step"):
        sum(range(100))
    assert breakdown.get("step") > 0.0
