"""Crash-safe checkpoint/resume and rank-failure recovery for ActiveSession.

The acceptance pins of the fault-tolerance layer:

* a session checkpointed mid-run and resumed in a fresh process continues
  **bit-identically** to the uninterrupted run, for every shipped strategy
  (curves and labeled ids both);
* a ``parallel_ranks=2`` session that loses a rank mid-round under
  ``on_rank_failure="repartition_retry"`` selects the same points as a clean
  serial session, on both transports;
* corrupt or truncated checkpoints fail loudly instead of resuming from
  garbage.
"""

import numpy as np
import pytest

from repro.baselines import FIRALStrategy
from repro.core.config import RelaxConfig, RoundConfig
from repro.core.firal import ApproxFIRAL
from repro.engine.session import ActiveSession, SessionConfig
from repro.engine.stores import StreamingPointStore
from repro.parallel import FaultPlan
from repro.parallel.comm import CommError
from tests.test_engine_session import (
    STRATEGY_FACTORIES,
    _assert_curves_identical,
    _small_problem,
)


@pytest.fixture(scope="module")
def problem():
    return _small_problem(seed=0)


def _run_full(problem, factory, *, rounds=4, config=None):
    session = ActiveSession(
        problem, factory(), budget_per_round=4, num_rounds=rounds, seed=7, config=config
    )
    session.run()
    return session


def _run_resumed(problem, factory, tmp_path, *, rounds=4, split=2, config_factory=None):
    """Run ``split`` rounds, checkpoint, resume in a fresh session, finish."""

    make_config = config_factory or (lambda: None)
    first = ActiveSession(
        problem,
        factory(),
        budget_per_round=4,
        num_rounds=rounds,
        seed=7,
        config=make_config(),
    )
    first.run(split)
    ckpt = first.checkpoint(tmp_path / "session.json")
    resumed = ActiveSession.resume(ckpt, problem, factory(), config=make_config())
    resumed.run(rounds - split, record_initial=False)
    return resumed


class TestCheckpointResume:
    @pytest.mark.parametrize("name", sorted(STRATEGY_FACTORIES))
    def test_resume_is_bit_identical_for_every_strategy(self, problem, tmp_path, name):
        factory = STRATEGY_FACTORIES[name]
        full = _run_full(problem, factory)
        resumed = _run_resumed(problem, factory, tmp_path)
        _assert_curves_identical(full.result, resumed.result)
        np.testing.assert_array_equal(full.store.labeled_ids, resumed.store.labeled_ids)

    def test_resume_with_incremental_fisher(self, problem, tmp_path):
        factory = STRATEGY_FACTORIES["approx-firal"]
        make_config = lambda: SessionConfig(incremental_fisher=True, reuse_eta=True)  # noqa: E731
        full = _run_full(problem, factory, config=make_config())
        resumed = _run_resumed(problem, factory, tmp_path, config_factory=make_config)
        _assert_curves_identical(full.result, resumed.result)
        np.testing.assert_array_equal(full.store.labeled_ids, resumed.store.labeled_ids)

    def test_resume_replays_streamed_pool_growth(self, tmp_path):
        problem = _small_problem(seed=3)
        extra = np.random.default_rng(9)
        new_f = extra.standard_normal((6, problem.dimension))
        new_y = extra.integers(0, problem.num_classes, size=6)
        make_config = lambda: SessionConfig(store=StreamingPointStore.from_problem)  # noqa: E731
        factory = STRATEGY_FACTORIES["entropy"]

        full = ActiveSession(
            problem, factory(), budget_per_round=4, num_rounds=4, seed=7, config=make_config()
        )
        full.run(2)
        full.extend_pool(new_f, new_y)
        full.run(2, record_initial=False)

        first = ActiveSession(
            problem, factory(), budget_per_round=4, num_rounds=4, seed=7, config=make_config()
        )
        first.run(2)
        first.extend_pool(new_f, new_y)
        ckpt = first.checkpoint(tmp_path / "session.json")
        resumed = ActiveSession.resume(ckpt, problem, factory(), config=make_config())
        assert resumed.store.total_points == full.store.total_points
        resumed.run(2, record_initial=False)
        _assert_curves_identical(full.result, resumed.result)
        np.testing.assert_array_equal(full.store.labeled_ids, resumed.store.labeled_ids)

    def test_run_writes_checkpoints_on_cadence(self, problem, tmp_path):
        path = tmp_path / "auto.json"
        factory = STRATEGY_FACTORIES["random"]
        session = ActiveSession(
            problem,
            factory(),
            budget_per_round=4,
            num_rounds=4,
            seed=7,
            config=SessionConfig(checkpoint_every=2, checkpoint_path=path),
        )
        session.run()
        resumed = ActiveSession.resume(
            path, problem, factory(), config=SessionConfig(checkpoint_every=2, checkpoint_path=path)
        )
        # The last cadence hit was after round 4 == the finished run.
        assert resumed.round_index == 4
        _assert_curves_identical(session.result, resumed.result)

    def test_checkpoint_needs_a_target(self, problem):
        session = ActiveSession(
            problem, STRATEGY_FACTORIES["random"](), budget_per_round=4, seed=7
        )
        with pytest.raises(ValueError, match="checkpoint target"):
            session.checkpoint()

    def test_cadence_requires_path(self, problem):
        with pytest.raises(ValueError, match="checkpoint_path"):
            ActiveSession(
                problem,
                STRATEGY_FACTORIES["random"](),
                budget_per_round=4,
                seed=7,
                config=SessionConfig(checkpoint_every=2),
            )


class TestCheckpointValidation:
    def _checkpoint(self, problem, tmp_path, **config_kwargs):
        session = ActiveSession(
            problem,
            STRATEGY_FACTORIES["random"](),
            budget_per_round=4,
            num_rounds=4,
            seed=7,
            config=SessionConfig(**config_kwargs) if config_kwargs else None,
        )
        session.run(1)
        return session.checkpoint(tmp_path / "session.json")

    def test_truncated_checkpoint_fails_loudly(self, problem, tmp_path):
        ckpt = self._checkpoint(problem, tmp_path)
        ckpt.write_text(ckpt.read_text()[:40])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            ActiveSession.resume(ckpt, problem, STRATEGY_FACTORIES["random"]())

    def test_config_mismatch_rejected(self, problem, tmp_path):
        ckpt = self._checkpoint(problem, tmp_path)
        with pytest.raises(ValueError, match="reuse_eta"):
            ActiveSession.resume(
                ckpt,
                problem,
                STRATEGY_FACTORIES["random"](),
                config=SessionConfig(reuse_eta=True),
            )

    def test_strategy_mismatch_rejected(self, problem, tmp_path):
        ckpt = self._checkpoint(problem, tmp_path)
        with pytest.raises(ValueError, match="strategy"):
            ActiveSession.resume(ckpt, problem, STRATEGY_FACTORIES["entropy"]())

    def test_unsupported_format_version_rejected(self, problem, tmp_path):
        import json

        ckpt = self._checkpoint(problem, tmp_path)
        payload = json.loads(ckpt.read_text())
        payload["format_version"] = 999
        ckpt.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            ActiveSession.resume(ckpt, problem, STRATEGY_FACTORIES["random"]())


def _parallel_firal():
    # track_objective="none" matches the fixed-iteration schedule of the
    # distributed RELAX solver, so serial and recovered runs are comparable.
    return FIRALStrategy(
        ApproxFIRAL(
            RelaxConfig(max_iterations=6, seed=0, track_objective="none"),
            RoundConfig(eta=1.0),
        )
    )


class TestRankFailureRecovery:
    """A killed rank under repartition_retry re-runs the round deterministically."""

    def _serial(self, problem, rounds=3):
        session = ActiveSession(
            problem, _parallel_firal(), budget_per_round=4, num_rounds=rounds, seed=7
        )
        session.run()
        return session

    def _faulty(self, problem, transport, rounds=3):
        # The plan pins the *last* rank: after recovery retires it, the
        # re-run's smaller communicator makes the plan inert.
        plan = FaultPlan(rank=1, at_call=2, mode="kill", collective="allreduce")
        strategy = _parallel_firal()
        session = ActiveSession(
            problem,
            strategy,
            budget_per_round=4,
            num_rounds=rounds,
            seed=7,
            config=SessionConfig(
                parallel_ranks=2,
                parallel_transport=transport,
                on_rank_failure="repartition_retry",
                fault_plan=plan,
            ),
        )
        session.run()
        return session, strategy

    def test_recovery_matches_serial_simulated(self, problem):
        serial = self._serial(problem)
        faulty, strategy = self._faulty(problem, "simulated")
        _assert_curves_identical(serial.result, faulty.result)
        np.testing.assert_array_equal(serial.store.labeled_ids, faulty.store.labeled_ids)
        assert len(strategy.recovery_events) == 1
        event = strategy.recovery_events[0]
        assert event["failed_rank"] == 1
        assert event["collective"] == "allreduce"
        assert event["retry_ranks"] == 1

    def test_abort_policy_propagates(self, problem):
        plan = FaultPlan(rank=1, at_call=2, mode="kill", collective="allreduce")
        session = ActiveSession(
            problem,
            _parallel_firal(),
            budget_per_round=4,
            num_rounds=3,
            seed=7,
            config=SessionConfig(parallel_ranks=2, fault_plan=plan),
        )
        with pytest.raises(CommError) as excinfo:
            session.run()
        assert excinfo.value.rank == 1
        assert excinfo.value.collective == "allreduce"

    def test_fault_plan_requires_parallel_ranks(self, problem):
        with pytest.raises(ValueError, match="parallel_ranks"):
            ActiveSession(
                problem,
                _parallel_firal(),
                budget_per_round=4,
                seed=7,
                config=SessionConfig(fault_plan=FaultPlan(rank=0)),
            )

    def test_invalid_policy_rejected(self, problem):
        with pytest.raises(ValueError, match="on_rank_failure"):
            ActiveSession(
                problem,
                _parallel_firal(),
                budget_per_round=4,
                seed=7,
                config=SessionConfig(on_rank_failure="shrug"),
            )

    @pytest.mark.chaos
    @pytest.mark.multiprocess
    def test_recovery_matches_serial_shared_memory(self, problem):
        serial = self._serial(problem, rounds=2)
        faulty, strategy = self._faulty(problem, "shared_memory", rounds=2)
        _assert_curves_identical(serial.result, faulty.result)
        np.testing.assert_array_equal(serial.store.labeled_ids, faulty.store.labeled_ids)
        assert len(strategy.recovery_events) == 1
        assert strategy.recovery_events[0]["failed_rank"] == 1
