"""Tests for the exact RELAX solver (Algorithm 1, Lines 1-9)."""

import numpy as np
import pytest

from repro.core.config import RelaxConfig
from repro.core.exact_relax import exact_relax, exact_relax_gradient
from repro.fisher.hessian import point_hessian_dense
from repro.fisher.objective import fisher_ratio_objective
from tests.conftest import make_fisher_dataset


@pytest.fixture
def dataset():
    return make_fisher_dataset(seed=3, num_pool=20, num_labeled=6, dimension=3, num_classes=3)


class TestExactGradient:
    def test_matches_definition(self, dataset):
        """g_i = -Trace(H_i Sigma^{-1} H_p Sigma^{-1}) evaluated naively."""

        rng = np.random.default_rng(0)
        z = rng.uniform(0.1, 1.0, size=dataset.num_pool)
        grad = exact_relax_gradient(dataset, z, regularization=1e-8)

        sigma = dataset.sigma_dense(z) + 1e-8 * np.eye(dataset.joint_dimension)
        sigma_inv = np.linalg.inv(sigma)
        M = sigma_inv @ dataset.pool_hessian_dense() @ sigma_inv
        expected = np.array(
            [
                -np.trace(point_hessian_dense(dataset.pool_features[i], dataset.pool_probabilities[i]) @ M)
                for i in range(dataset.num_pool)
            ]
        )
        np.testing.assert_allclose(grad, expected, rtol=1e-6, atol=1e-9)

    def test_gradient_is_negative(self, dataset):
        """Each H_i and M are PSD so Trace(H_i M) >= 0, hence g_i <= 0."""

        z = np.full(dataset.num_pool, 0.5)
        grad = exact_relax_gradient(dataset, z, regularization=1e-8)
        assert np.all(grad <= 1e-10)

    def test_matches_finite_difference_of_objective(self, dataset):
        z = np.full(dataset.num_pool, 0.5)
        grad = exact_relax_gradient(dataset, z, regularization=1e-6)
        eps = 1e-5
        for i in (0, 5, 13):
            z_plus = z.copy()
            z_plus[i] += eps
            z_minus = z.copy()
            z_minus[i] -= eps
            numeric = (
                fisher_ratio_objective(dataset, z_plus, regularization=1e-6)
                - fisher_ratio_objective(dataset, z_minus, regularization=1e-6)
            ) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, rel=1e-3, abs=1e-6)


class TestExactRelax:
    def test_weights_on_scaled_simplex(self, dataset):
        result = exact_relax(dataset, budget=5, config=RelaxConfig(max_iterations=5))
        assert np.all(result.weights >= 0)
        assert float(result.weights.sum()) == pytest.approx(5.0, rel=1e-8)

    def test_objective_decreases(self, dataset):
        result = exact_relax(dataset, budget=5, config=RelaxConfig(max_iterations=15))
        trace = result.objective_trace
        assert len(trace) >= 2
        assert trace[-1] <= trace[0] + 1e-9

    def test_convergence_flag_set_with_loose_tolerance(self, dataset):
        result = exact_relax(
            dataset, budget=5, config=RelaxConfig(max_iterations=50, objective_tolerance=1e-2)
        )
        assert result.converged
        assert result.iterations < 50

    def test_iteration_cap_respected(self, dataset):
        result = exact_relax(
            dataset, budget=3, config=RelaxConfig(max_iterations=2, objective_tolerance=0.0)
        )
        assert result.iterations == 2

    def test_concentrates_weight_relative_to_uniform(self, dataset):
        """Mirror descent moves away from the uniform distribution."""

        result = exact_relax(dataset, budget=5, config=RelaxConfig(max_iterations=20))
        uniform = 5.0 / dataset.num_pool
        assert float(np.max(result.weights)) > uniform

    def test_invalid_budget_rejected(self, dataset):
        with pytest.raises(ValueError):
            exact_relax(dataset, budget=0)

    def test_timings_recorded(self, dataset):
        result = exact_relax(dataset, budget=3, config=RelaxConfig(max_iterations=3))
        assert result.timings.total() > 0
        assert result.timings.get("gradient") > 0
