"""Tests for the validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_features,
    check_labels,
    check_probabilities,
    check_square_blocks,
    require,
)


def test_require_passes_on_true():
    require(True, "never raised")


def test_require_raises_with_message():
    with pytest.raises(ValueError, match="custom message"):
        require(False, "custom message")


class TestCheckFeatures:
    def test_accepts_valid_matrix(self):
        X = np.random.default_rng(0).standard_normal((5, 3))
        out = check_features(X)
        assert out.shape == (5, 3)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_features(np.zeros(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_features(np.zeros((0, 3)))

    def test_rejects_integer_dtype(self):
        with pytest.raises(ValueError, match="floating"):
            check_features(np.zeros((2, 2), dtype=np.int64))

    def test_rejects_nan(self):
        X = np.zeros((2, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            check_features(X)


class TestCheckLabels:
    def test_accepts_valid_labels(self):
        y = check_labels(np.array([0, 1, 2]), num_classes=3)
        assert y.shape == (3,)

    def test_rejects_float_labels(self):
        with pytest.raises(ValueError, match="integer"):
            check_labels(np.array([0.0, 1.0]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            check_labels(np.array([0, -1]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="num_classes"):
            check_labels(np.array([0, 3]), num_classes=3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_labels(np.zeros((2, 2), dtype=np.int64))


class TestCheckProbabilities:
    def test_accepts_valid_rows(self):
        H = np.array([[0.2, 0.8], [0.5, 0.5]])
        out = check_probabilities(H, num_classes=2)
        assert out.shape == (2, 2)

    def test_rejects_wrong_class_count(self):
        H = np.array([[0.2, 0.8]])
        with pytest.raises(ValueError, match="columns"):
            check_probabilities(H, num_classes=3)

    def test_rejects_negative_probability(self):
        H = np.array([[-0.2, 1.2]])
        with pytest.raises(ValueError, match="negative"):
            check_probabilities(H)

    def test_accepts_substochastic_rows(self):
        """Reduced (c-1) parameterization rows sum to less than 1."""

        H = np.array([[0.3, 0.3], [0.1, 0.2]])
        out = check_probabilities(H)
        assert out.shape == (2, 2)

    def test_rejects_rows_summing_above_one(self):
        H = np.array([[0.9, 0.9]])
        with pytest.raises(ValueError, match="at most 1"):
            check_probabilities(H)

    def test_rejects_all_zero_rows(self):
        H = np.array([[0.0, 0.0]])
        with pytest.raises(ValueError, match="all zero"):
            check_probabilities(H)

    def test_rejects_nan(self):
        H = np.array([[np.nan, 1.0]])
        with pytest.raises(ValueError, match="NaN"):
            check_probabilities(H)


class TestCheckSquareBlocks:
    def test_accepts_stack_of_square_blocks(self):
        out = check_square_blocks(np.zeros((3, 4, 4)))
        assert out.shape == (3, 4, 4)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            check_square_blocks(np.zeros((3, 4, 5)))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="3-D"):
            check_square_blocks(np.zeros((4, 4)))

    def test_rejects_inf(self):
        blocks = np.zeros((1, 2, 2))
        blocks[0, 0, 0] = np.inf
        with pytest.raises(ValueError, match="NaN or Inf"):
            check_square_blocks(blocks)
