"""Out-of-core pool store: bit-identity with dense, budgets, persistence.

The ISSUE-8 contract of :class:`repro.engine.MmapPointStore`:

* an mmap-backed session selects **bit-identically** to the dense serial
  run for every strategy — serially, under ``parallel_ranks=2`` on both
  transports, and with a candidate prefilter in front;
* host/compute views, ``label()`` and checkpoint/resume behave exactly like
  ``DensePointStore``, including after a simulated process restart
  (:meth:`MmapPointStore.from_file` reopening the master from disk);
* promoting more than ``promotion_budget_bytes`` raises a descriptive
  ``ValueError`` (store-level and session-level with ``resident_pool``)
  instead of silently densifying the out-of-core pool;
* :meth:`stream_round_scores` equals one resident ``fused_round_scores``
  pass bit-for-bit;
* ``StreamingPointStore.extend`` promotes **only** the appended rows
  (the incremental-promotion regression guard).
"""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

from repro.backend import get_backend
from repro.core.config import RelaxConfig, RoundConfig
from repro.core.firal import ApproxFIRAL
from repro.baselines.base import FIRALStrategy
from repro.engine import ActiveSession, SessionConfig
from repro.engine.pool import DensePointStore
from repro.engine.prefilter import make_prefilter
from repro.engine.stores import MmapPointStore, StreamingPointStore
from repro.fisher.hessian import block_diagonal_of_sum, point_block_coefficients
from repro.linalg.sherman_morrison import fused_round_scores

from test_engine_session import STRATEGY_FACTORIES, _small_problem


@pytest.fixture(scope="module")
def problem():
    return _small_problem(seed=0)


def _firal_parallel_strategy():
    return FIRALStrategy(
        ApproxFIRAL(
            RelaxConfig(max_iterations=4, track_objective="none", seed=0), RoundConfig(eta=1.0)
        )
    )


def _run(problem, strategy, config=None, num_rounds=2, seed=0):
    session = ActiveSession(
        problem, strategy, budget_per_round=4, num_rounds=num_rounds, seed=seed, config=config
    )
    result = session.run()
    return session, [r.eval_accuracy for r in result.records]


def _make_store(n=40, d=6, m0=4, seed=0, **kwargs) -> MmapPointStore:
    rng = np.random.default_rng(seed)
    features = rng.standard_normal((n, d))
    labels = rng.integers(0, 3, size=n).astype(np.int64)
    return MmapPointStore.from_arrays(features, labels, m0, **kwargs), features, labels


# --------------------------------------------------------------------- #
# selection bit-identity
# --------------------------------------------------------------------- #
class TestMmapSelectionParity:
    @pytest.mark.parametrize("name", sorted(STRATEGY_FACTORIES))
    def test_serial_sessions_bit_identical_to_dense(self, problem, name):
        factory = STRATEGY_FACTORIES[name]
        dense_session, dense_curve = _run(problem, factory())
        mmap_session, mmap_curve = _run(
            problem, factory(), config=SessionConfig(store=MmapPointStore.from_problem)
        )
        assert mmap_session.store.kind == "mmap"
        assert mmap_curve == dense_curve
        np.testing.assert_array_equal(
            mmap_session.store.labeled_ids, dense_session.store.labeled_ids
        )

    @pytest.mark.parametrize("name", sorted(STRATEGY_FACTORIES))
    def test_small_chunks_do_not_change_selections(self, problem, name):
        """Chunked gathers at a tiny chunk_rows still reproduce dense exactly."""

        factory = STRATEGY_FACTORIES[name]
        dense_session, dense_curve = _run(problem, factory())
        mmap_session, mmap_curve = _run(
            problem,
            factory(),
            config=SessionConfig(store=MmapPointStore.factory(chunk_rows=7)),
        )
        assert mmap_curve == dense_curve
        np.testing.assert_array_equal(
            mmap_session.store.labeled_ids, dense_session.store.labeled_ids
        )

    def test_parallel_ranks_simulated_matches_dense_serial(self, problem):
        serial_session, serial_curve = _run(problem, _firal_parallel_strategy())
        mmap_session, mmap_curve = _run(
            problem,
            _firal_parallel_strategy(),
            config=SessionConfig(store=MmapPointStore.from_problem, parallel_ranks=2),
        )
        assert mmap_curve == serial_curve
        np.testing.assert_array_equal(
            mmap_session.store.labeled_ids, serial_session.store.labeled_ids
        )

    @pytest.mark.multiprocess
    def test_parallel_ranks_shared_memory_matches_dense_serial(self, problem):
        serial_session, serial_curve = _run(problem, _firal_parallel_strategy())
        mmap_session, mmap_curve = _run(
            problem,
            _firal_parallel_strategy(),
            config=SessionConfig(
                store=MmapPointStore.from_problem,
                parallel_ranks=2,
                parallel_transport="shared_memory",
            ),
        )
        assert mmap_curve == serial_curve
        np.testing.assert_array_equal(
            mmap_session.store.labeled_ids, serial_session.store.labeled_ids
        )

    def test_prefilter_candidates_match_dense(self, problem):
        """PR-6 prefilter pipeline sees identical candidate ids over mmap."""

        def config(store):
            return SessionConfig(store=store, prefilter=make_prefilter("random", 0.5))

        dense_session, dense_curve = _run(
            problem, _firal_parallel_strategy(), config=config(DensePointStore.from_problem)
        )
        mmap_session, mmap_curve = _run(
            problem, _firal_parallel_strategy(), config=config(MmapPointStore.from_problem)
        )
        assert mmap_curve == dense_curve
        np.testing.assert_array_equal(
            mmap_session.store.labeled_ids, dense_session.store.labeled_ids
        )


# --------------------------------------------------------------------- #
# store views / persistence property test
# --------------------------------------------------------------------- #
class TestMmapStoreViews:
    def test_views_match_dense_bit_for_bit(self):
        """Host view, compute view and label() agree with DensePointStore."""

        rng = np.random.default_rng(3)
        n, d, m0 = 50, 5, 6
        features = rng.standard_normal((n, d))
        labels = rng.integers(0, 4, size=n).astype(np.int64)
        dense = DensePointStore(features[:m0], labels[:m0], features[m0:], labels[m0:])
        mmapd = MmapPointStore.from_arrays(features, labels, m0, chunk_rows=8)

        for _ in range(4):
            np.testing.assert_array_equal(mmapd.pool_ids, dense.pool_ids)
            np.testing.assert_array_equal(mmapd.labeled_ids, dense.labeled_ids)
            np.testing.assert_array_equal(
                mmapd.features_host(mmapd.pool_ids), dense.features_host(dense.pool_ids)
            )
            backend = get_backend()
            np.testing.assert_array_equal(
                backend.to_numpy(mmapd.compute_features(mmapd.pool_ids)),
                backend.to_numpy(dense.compute_features(dense.pool_ids)),
            )
            dense_gids, dense_labels = dense.label([1, 3])
            mmap_gids, mmap_labels = mmapd.label([1, 3])
            np.testing.assert_array_equal(mmap_gids, dense_gids)
            np.testing.assert_array_equal(mmap_labels, dense_labels)

    def test_restart_via_from_file_is_bit_identical(self, tmp_path):
        """Reopening the persisted master reproduces views and membership."""

        path = os.fspath(tmp_path / "pool.npy")
        rng = np.random.default_rng(0)
        features = rng.standard_normal((40, 6))
        labels = rng.integers(0, 3, size=40).astype(np.int64)
        store = MmapPointStore.from_arrays(features, labels, 4, path=path, chunk_rows=8)
        labeled_gids, _ = store.label([0, 5, 9])
        history = store.labeled_ids
        membership = store.in_pool.copy()
        pool_view = store.features_host(store.pool_ids)
        del store
        gc.collect()  # the explicit-path store must NOT unlink its file

        reopened = MmapPointStore.from_file(path, chunk_rows=8)
        reopened.restore_membership(history)
        np.testing.assert_array_equal(reopened.labeled_ids[4:], labeled_gids)
        np.testing.assert_array_equal(reopened.in_pool, membership)
        np.testing.assert_array_equal(reopened.features_host(reopened.pool_ids), pool_view)
        np.testing.assert_array_equal(reopened.labels, labels)

    def test_checkpoint_resume_bit_identical(self, problem, tmp_path):
        """A checkpointed mmap session resumes exactly like a dense one (PR 7)."""

        factory = STRATEGY_FACTORIES["approx-firal"]
        make_config = lambda: SessionConfig(store=MmapPointStore.from_problem)  # noqa: E731
        full = ActiveSession(
            problem, factory(), budget_per_round=4, num_rounds=4, seed=0, config=make_config()
        )
        full.run()

        first = ActiveSession(
            problem, factory(), budget_per_round=4, num_rounds=4, seed=0, config=make_config()
        )
        first.run(2)
        ckpt = first.checkpoint(tmp_path / "session.json")
        resumed = ActiveSession.resume(ckpt, problem, factory(), config=make_config())
        resumed.run(2, record_initial=False)
        np.testing.assert_array_equal(full.store.labeled_ids, resumed.store.labeled_ids)
        assert [r.eval_accuracy for r in full.result.records[-2:]] == [
            r.eval_accuracy for r in resumed.result.records[-2:]
        ]

    def test_extend_spills_atomically_and_matches_dense(self):
        rng = np.random.default_rng(5)
        store, features, labels = _make_store(n=30, d=4, m0=3, chunk_rows=8)
        extra_f = rng.standard_normal((11, 4))
        extra_y = rng.integers(0, 3, size=11).astype(np.int64)
        new_ids = store.extend(extra_f, extra_y)
        np.testing.assert_array_equal(new_ids, np.arange(30, 41))
        np.testing.assert_array_equal(
            store.features_host(new_ids), extra_f.astype(store.features.dtype)
        )
        np.testing.assert_array_equal(np.asarray(store.features[:30]), features)
        assert not os.path.exists(store.path + ".grow.tmp")

    def test_from_blocks_matches_from_arrays(self):
        rng = np.random.default_rng(9)
        features = rng.standard_normal((25, 4))
        labels = rng.integers(0, 3, size=25).astype(np.int64)
        whole = MmapPointStore.from_arrays(features, labels, 5, chunk_rows=8)

        def blocks():
            for lo in range(0, 25, 7):
                hi = min(lo + 7, 25)
                yield features[lo:hi], labels[lo:hi]

        streamed = MmapPointStore.from_blocks(blocks(), 25, num_initial=5, chunk_rows=8)
        np.testing.assert_array_equal(np.asarray(streamed.features), np.asarray(whole.features))
        np.testing.assert_array_equal(streamed.labels, whole.labels)
        np.testing.assert_array_equal(streamed.pool_ids, whole.pool_ids)
        with pytest.raises(ValueError):
            MmapPointStore.from_blocks(blocks(), 30, num_initial=5)


# --------------------------------------------------------------------- #
# promotion budget
# --------------------------------------------------------------------- #
class TestPromotionBudget:
    def test_compute_features_over_budget_raises_descriptively(self):
        store, _, _ = _make_store(n=64, d=8, m0=4, promotion_budget_bytes=512)
        with pytest.raises(ValueError, match="promotion_budget_bytes"):
            store.compute_features(store.pool_ids)
        # Under-budget promotions still work.
        small = store.compute_features(store.pool_ids[:2])
        assert get_backend().to_numpy(small).shape == (2, 8)

    def test_resident_session_over_budget_raises_at_construction(self, problem):
        config = SessionConfig(
            store=MmapPointStore.factory(promotion_budget_bytes=256), resident_pool=True
        )
        with pytest.raises(ValueError, match="resident_pool"):
            ActiveSession(
                problem,
                STRATEGY_FACTORIES["random"](),
                budget_per_round=4,
                num_rounds=1,
                seed=0,
                config=config,
            )

    def test_non_resident_session_runs_under_tiny_budget(self, problem):
        """The default path never densifies, so a tiny budget is harmless."""

        config = SessionConfig(store=MmapPointStore.factory(promotion_budget_bytes=256))
        _, curve = _run(problem, STRATEGY_FACTORIES["random"](), config=config)
        _, dense_curve = _run(problem, STRATEGY_FACTORIES["random"]())
        assert curve == dense_curve

    def test_budget_none_disables_guard(self, problem):
        config = SessionConfig(
            store=MmapPointStore.factory(promotion_budget_bytes=None), resident_pool=True
        )
        _, curve = _run(problem, STRATEGY_FACTORIES["random"](), config=config)
        _, dense_curve = _run(
            problem, STRATEGY_FACTORIES["random"](), config=SessionConfig(resident_pool=True)
        )
        assert curve == dense_curve


# --------------------------------------------------------------------- #
# streamed scoring
# --------------------------------------------------------------------- #
class TestStreamRoundScores:
    def test_equals_resident_fused_round_scores(self):
        rng = np.random.default_rng(11)
        n, d, c = 60, 5, 3
        store, features, _ = _make_store(n=n, d=d, m0=0, seed=11, chunk_rows=16)
        probs = rng.dirichlet(np.ones(c + 1), size=n)[:, :c]
        gammas = point_block_coefficients(probs)
        sigma = block_diagonal_of_sum(features, probs).add_identity(1.0)
        a_inverse = sigma.inverse()

        resident = np.asarray(
            fused_round_scores(
                a_inverse,
                sigma,
                np.ascontiguousarray(features, dtype=np.float64),
                np.ascontiguousarray(gammas, dtype=np.float64),
                0.5,
            )
        )
        streamed = store.stream_round_scores(a_inverse, sigma, gammas, 0.5, block_rows=16)
        np.testing.assert_array_equal(streamed, resident)

    def test_gamma_shape_validated(self):
        store, features, _ = _make_store(n=20, d=4, m0=0, seed=2)
        with pytest.raises(ValueError, match="every stored point"):
            store.stream_round_scores(None, None, np.zeros((3, 2)), 1.0)


# --------------------------------------------------------------------- #
# streaming store incremental promotion (satellite regression guard)
# --------------------------------------------------------------------- #
class TestStreamingIncrementalPromotion:
    def test_extend_promotes_only_appended_rows(self):
        rng = np.random.default_rng(4)
        n, d = 30, 5
        store = StreamingPointStore(
            rng.standard_normal((4, d)),
            np.zeros(4, dtype=np.int64),
            rng.standard_normal((n - 4, d)),
            np.zeros(n - 4, dtype=np.int64),
        )
        store.compute_features(store.pool_ids)
        assert store.promoted_rows == n

        extra = rng.standard_normal((12, d))
        store.extend(extra, np.zeros(12, dtype=np.int64))
        store.compute_features(store.pool_ids)
        # Regression guard: re-promoting the original master on extend would
        # read n + (n + 12) rows here, not n + 12.
        assert store.promoted_rows == n + 12

    def test_incremental_segments_match_full_view(self):
        rng = np.random.default_rng(6)
        store = StreamingPointStore(
            rng.standard_normal((3, 4)),
            np.zeros(3, dtype=np.int64),
            rng.standard_normal((17, 4)),
            np.zeros(17, dtype=np.int64),
        )
        store.extend(rng.standard_normal((9, 4)), np.zeros(9, dtype=np.int64))
        backend = get_backend()
        np.testing.assert_array_equal(
            backend.to_numpy(store.compute_features(store.pool_ids)),
            store.features_host(store.pool_ids).astype(np.float64),
        )
