"""Candidate-prefilter suite: identity pinning, determinism, shard routing.

The contract of the prefilter stage (``SessionConfig.prefilter``):

* **keep-everything settings are the identity** — a filter with
  ``keep_ratio=1.0`` (or ``num_clusters = n``) consumes no RNG draws and the
  session is bit-identical to an unfiltered one, for all five strategies,
  serial and ``parallel_ranks=2`` on both transports;
* **determinism** — the same seed yields the same candidate set;
* **sharded pools filter per shard** — each shard keeps its own quota and
  candidates stay grouped by owning shard, preserving the multi-rank
  offsets contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import FIRALStrategy, SelectionContext
from repro.baselines.entropy import EntropyStrategy, predictive_entropy
from repro.baselines.kmeans import KMeansStrategy
from repro.baselines.random_sampling import RandomStrategy
from repro.core.config import RelaxConfig, RoundConfig
from repro.core.firal import ApproxFIRAL, ExactFIRAL
from repro.engine import (
    ActiveSession,
    DiversityFilter,
    RandomSubsampleFilter,
    SessionConfig,
    ShardedPointStore,
    TopKScoreFilter,
    make_prefilter,
)
from repro.engine.prefilter import CandidateFilter
from repro.utils.random import as_generator

from test_engine_session import _small_problem


def _approx_firal_strategy():
    return FIRALStrategy(
        ApproxFIRAL(RelaxConfig(max_iterations=6, seed=0), RoundConfig(eta=1.0))
    )


def _exact_firal_strategy():
    return FIRALStrategy(
        ExactFIRAL(RelaxConfig(max_iterations=4, track_objective="exact"), RoundConfig(eta=1.0))
    )


def _parallel_capable_strategy():
    return FIRALStrategy(
        ApproxFIRAL(
            RelaxConfig(max_iterations=4, track_objective="none", seed=0),
            RoundConfig(eta=1.0),
        )
    )


STRATEGY_FACTORIES = {
    "random": RandomStrategy,
    "entropy": EntropyStrategy,
    "kmeans": KMeansStrategy,
    "approx-firal": _approx_firal_strategy,
    "exact-firal": _exact_firal_strategy,
}

#: keep-everything variants of every filter: ratio 1.0 and (for the
#: clustering filter) k = n — both must short-circuit to the identity.
IDENTITY_FILTERS = {
    "random-1.0": lambda: RandomSubsampleFilter(1.0),
    "diversity-1.0": lambda: DiversityFilter(1.0),
    "diversity-k=n": lambda: DiversityFilter(1.0, num_clusters=60),
    "topk-1.0": lambda: TopKScoreFilter(1.0),
}


@pytest.fixture(scope="module")
def problem():
    return _small_problem(seed=0)


def _run(problem, strategy, config, *, seed=7, rounds=3, budget=4):
    session = ActiveSession(
        problem, strategy, budget_per_round=budget, num_rounds=rounds, seed=seed, config=config
    )
    result = session.run()
    return (
        [record.eval_accuracy for record in result.records],
        session.store.labeled_ids.copy(),
    )


def _context(problem, *, budget=4, seed=3, shard_offsets=None, candidate_ids=None):
    """A standalone selection context over the problem's pool."""

    rng = np.random.default_rng(seed)
    n = problem.pool_features.shape[0]
    c = problem.num_classes
    pool_probs = rng.dirichlet(np.ones(c), size=n)
    labeled_probs = rng.dirichlet(np.ones(c), size=problem.initial_size)
    return SelectionContext(
        pool_features=problem.pool_features,
        pool_probabilities=pool_probs,
        labeled_features=problem.initial_features,
        labeled_probabilities=labeled_probs,
        budget=budget,
        rng=rng,
        pool_ids=np.arange(100, 100 + n, dtype=np.int64),
        shard_offsets=shard_offsets,
        candidate_ids=candidate_ids,
    )


# --------------------------------------------------------------------- #
# Filter units
# --------------------------------------------------------------------- #
class TestFilterUnits:
    @pytest.mark.parametrize("ratio", [0.0, -0.1, 1.5])
    def test_keep_ratio_validated(self, ratio):
        with pytest.raises(ValueError, match="keep_ratio"):
            RandomSubsampleFilter(ratio)

    def test_keep_count_floors(self):
        f = RandomSubsampleFilter(0.1)
        # ratio-scaled, but never below the budget (when the segment has it)
        assert f.keep_count(100, 4) == 10
        assert f.keep_count(100, 25) == 25
        # tiny segments: floored at min(segment, budget), capped at segment
        assert f.keep_count(3, 4) == 3
        assert f.keep_count(1, 4) == 1

    @pytest.mark.parametrize("kind", ["random", "diversity", "topk"])
    def test_candidates_sorted_unique_subset(self, problem, kind):
        context = _context(problem)
        ids = make_prefilter(kind, 0.3).select_candidates(context, np.random.default_rng(0))
        assert ids.size >= context.budget
        assert bool(np.all(np.diff(ids) > 0))
        assert np.isin(ids, context.pool_ids).all()

    @pytest.mark.parametrize("kind", ["random", "diversity", "topk"])
    def test_same_seed_same_candidates(self, problem, kind):
        context = _context(problem)
        a = make_prefilter(kind, 0.3).select_candidates(context, np.random.default_rng(11))
        b = make_prefilter(kind, 0.3).select_candidates(context, np.random.default_rng(11))
        np.testing.assert_array_equal(a, b)

    def test_topk_is_deterministic_without_rng(self, problem):
        """The cheap-score shortlist never consumes the RNG stream."""

        context = _context(problem)
        rng = as_generator(5)
        before = rng.bit_generator.state
        ids = TopKScoreFilter(0.3).select_candidates(context, rng)
        assert rng.bit_generator.state == before
        other = TopKScoreFilter(0.3).select_candidates(context, np.random.default_rng(99))
        np.testing.assert_array_equal(ids, other)

    @pytest.mark.parametrize("name", sorted(IDENTITY_FILTERS))
    def test_keep_everything_consumes_no_rng(self, problem, name):
        context = _context(problem)
        rng = as_generator(5)
        before = rng.bit_generator.state
        ids = IDENTITY_FILTERS[name]().select_candidates(context, rng)
        assert rng.bit_generator.state == before
        np.testing.assert_array_equal(ids, context.pool_ids)

    def test_topk_ranks_by_gamma_leverage(self):
        """Big-norm uncertain points outrank small-norm confident ones."""

        rng = np.random.default_rng(0)
        n, d = 40, 3
        X = rng.standard_normal((n, d))
        probs = np.full((n, 2), 0.5)
        # make one point hugely informative and one nearly useless
        X[7] *= 50.0
        probs[13] = (1.0 - 1e-9, 1e-9)
        keep = 10
        positions = TopKScoreFilter(0.25)._filter_segment(X, probs, keep, rng)
        assert 7 in positions
        assert 13 not in positions

    def test_diversity_covers_clusters(self):
        """Every sizable cluster contributes candidates (quota > 0)."""

        rng = np.random.default_rng(1)
        centers = np.asarray([[0.0, 0.0], [50.0, 0.0], [0.0, 50.0], [50.0, 50.0]])
        X = np.concatenate([c + 0.1 * rng.standard_normal((25, 2)) for c in centers])
        probs = np.full((X.shape[0], 2), 0.5)
        f = DiversityFilter(0.2, num_clusters=4)
        positions = f._filter_segment(X, probs, 20, rng)
        blocks = positions // 25  # ground-truth cluster of each candidate
        assert set(blocks.tolist()) == {0, 1, 2, 3}

    def test_misbehaving_filter_rejected(self, problem):
        class BadCount(CandidateFilter):
            name = "bad"

            def _filter_segment(self, features, probabilities, keep, rng):
                return np.arange(keep + 1)

        class Duplicates(CandidateFilter):
            name = "dupes"

            def _filter_segment(self, features, probabilities, keep, rng):
                return np.zeros(keep, dtype=np.int64)

        with pytest.raises(ValueError, match="expected"):
            BadCount(0.3).select_candidates(_context(problem), np.random.default_rng(0))
        with pytest.raises(ValueError, match="duplicate"):
            Duplicates(0.3).select_candidates(_context(problem), np.random.default_rng(0))

    def test_make_prefilter_kinds(self):
        assert make_prefilter(None, 0.5) is None
        assert make_prefilter("none", 0.5) is None
        assert isinstance(make_prefilter("random", 0.5), RandomSubsampleFilter)
        assert isinstance(make_prefilter("diversity", 0.5), DiversityFilter)
        assert isinstance(make_prefilter("topk", 0.5), TopKScoreFilter)
        with pytest.raises(ValueError, match="unknown prefilter"):
            make_prefilter("sieve", 0.5)


# --------------------------------------------------------------------- #
# SelectionContext candidate plumbing
# --------------------------------------------------------------------- #
class TestContextCandidates:
    def test_positions_map_back_to_ids(self, problem):
        context = _context(problem)
        ids = context.pool_ids[np.asarray([0, 3, 17, 41])]
        restricted = _context(problem, candidate_ids=ids)
        positions = restricted.candidate_positions()
        np.testing.assert_array_equal(restricted.pool_ids[positions], ids)
        assert context.candidate_positions() is None

    def test_fisher_dataset_is_candidate_scale(self, problem):
        ids = _context(problem).pool_ids[:10]
        restricted = _context(problem, candidate_ids=ids)
        dataset = restricted.fisher_dataset()
        assert dataset.pool_features.shape[0] == 10
        assert dataset.pool_probabilities.shape == (10, problem.num_classes - 1)

    def test_candidate_ids_validated(self, problem):
        ids = _context(problem).pool_ids
        with pytest.raises(ValueError, match="sorted"):
            _context(problem, candidate_ids=ids[[5, 3, 8, 9]])
        with pytest.raises(ValueError, match="subset"):
            _context(problem, candidate_ids=np.asarray([1, 2, 3, 999999]))
        with pytest.raises(ValueError, match="budget"):
            _context(problem, candidate_ids=ids[:3], budget=4)

    def test_candidate_ids_require_pool_ids(self, problem):
        rng = np.random.default_rng(0)
        n = problem.pool_features.shape[0]
        with pytest.raises(ValueError, match="pool_ids"):
            SelectionContext(
                pool_features=problem.pool_features,
                pool_probabilities=rng.dirichlet(np.ones(problem.num_classes), size=n),
                labeled_features=problem.initial_features,
                labeled_probabilities=rng.dirichlet(
                    np.ones(problem.num_classes), size=problem.initial_size
                ),
                budget=4,
                rng=rng,
                candidate_ids=np.arange(10, dtype=np.int64),
            )


# --------------------------------------------------------------------- #
# Identity pinning: keep-everything == unfiltered, bit for bit
# --------------------------------------------------------------------- #
class TestIdentityPinning:
    _reference = {}

    def _unfiltered(self, problem, strategy_name):
        if strategy_name not in self._reference:
            self._reference[strategy_name] = _run(
                problem, STRATEGY_FACTORIES[strategy_name](), SessionConfig()
            )
        return self._reference[strategy_name]

    @pytest.mark.parametrize("filter_name", sorted(IDENTITY_FILTERS))
    @pytest.mark.parametrize("strategy_name", sorted(STRATEGY_FACTORIES))
    def test_serial_identity(self, problem, strategy_name, filter_name):
        base_curve, base_ids = self._unfiltered(problem, strategy_name)
        curve, ids = _run(
            problem,
            STRATEGY_FACTORIES[strategy_name](),
            SessionConfig(prefilter=IDENTITY_FILTERS[filter_name]()),
        )
        assert curve == base_curve
        np.testing.assert_array_equal(ids, base_ids)

    def test_fast_config_identity(self, problem):
        """Keep-everything is also the identity on the prepared-Fisher path."""

        base = _run(
            problem, _approx_firal_strategy(), SessionConfig(reuse_eta=True, resident_pool=True)
        )
        filtered = _run(
            problem,
            _approx_firal_strategy(),
            SessionConfig(reuse_eta=True, resident_pool=True, prefilter=RandomSubsampleFilter(1.0)),
        )
        assert filtered[0] == base[0]
        np.testing.assert_array_equal(filtered[1], base[1])

    def test_warm_start_identity(self, problem):
        base = _run(problem, _approx_firal_strategy(), SessionConfig(relax_warm_start=True))
        filtered = _run(
            problem,
            _approx_firal_strategy(),
            SessionConfig(relax_warm_start=True, prefilter=RandomSubsampleFilter(1.0)),
        )
        assert filtered[0] == base[0]
        np.testing.assert_array_equal(filtered[1], base[1])

    @pytest.mark.parametrize("filter_name", sorted(IDENTITY_FILTERS))
    def test_simulated_parallel_identity(self, problem, filter_name):
        base = _run(problem, _parallel_capable_strategy(), SessionConfig(), seed=0)
        filtered = _run(
            problem,
            _parallel_capable_strategy(),
            SessionConfig(parallel_ranks=2, prefilter=IDENTITY_FILTERS[filter_name]()),
            seed=0,
        )
        assert filtered[0] == base[0]
        np.testing.assert_array_equal(filtered[1], base[1])

    @pytest.mark.multiprocess
    def test_shared_memory_parallel_identity(self, problem):
        """Keep-everything over real OS-process ranks == unfiltered serial."""

        base = _run(problem, _parallel_capable_strategy(), SessionConfig(), seed=0)
        filtered = _run(
            problem,
            _parallel_capable_strategy(),
            SessionConfig(
                parallel_ranks=2,
                parallel_transport="shared_memory",
                prefilter=RandomSubsampleFilter(1.0),
            ),
            seed=0,
        )
        assert filtered[0] == base[0]
        np.testing.assert_array_equal(filtered[1], base[1])


# --------------------------------------------------------------------- #
# Filtered sessions: determinism and behavior
# --------------------------------------------------------------------- #
class TestFilteredSessions:
    @pytest.mark.parametrize("kind", ["random", "diversity", "topk"])
    def test_same_seed_same_session(self, problem, kind):
        a = _run(problem, _approx_firal_strategy(), SessionConfig(prefilter=make_prefilter(kind, 0.4)))
        b = _run(problem, _approx_firal_strategy(), SessionConfig(prefilter=make_prefilter(kind, 0.4)))
        assert a[0] == b[0]
        np.testing.assert_array_equal(a[1], b[1])

    @pytest.mark.parametrize("strategy_name", sorted(STRATEGY_FACTORIES))
    def test_filtered_session_runs_for_every_strategy(self, problem, strategy_name):
        curve, ids = _run(
            problem,
            STRATEGY_FACTORIES[strategy_name](),
            SessionConfig(prefilter=make_prefilter("random", 0.4)),
        )
        assert len(curve) == 4  # initial + 3 rounds
        assert np.unique(ids).size == ids.size

    def test_session_info_advertises_prefilter(self, problem):
        captured = {}

        class Probe(RandomStrategy):
            def begin_session(self, info):
                captured["prefilter"] = info.prefilter

        ActiveSession(
            problem,
            Probe(),
            budget_per_round=4,
            num_rounds=2,
            seed=0,
            config=SessionConfig(prefilter=TopKScoreFilter(0.5)),
        )
        assert captured["prefilter"] == "topk"

    def test_prefilter_config_validated(self, problem):
        with pytest.raises(ValueError, match="select_candidates"):
            ActiveSession(
                problem,
                RandomStrategy(),
                budget_per_round=4,
                num_rounds=2,
                seed=0,
                config=SessionConfig(prefilter=object()),
            )


# --------------------------------------------------------------------- #
# Baseline routing through candidate_ids
# --------------------------------------------------------------------- #
class TestBaselineRouting:
    def test_entropy_scores_candidates_only(self, problem):
        context = _context(problem)
        ids = context.pool_ids[np.asarray([2, 9, 21, 33, 47, 55])]
        restricted = _context(problem, candidate_ids=ids)
        selected = EntropyStrategy().select(restricted)
        positions = restricted.candidate_positions()
        assert np.isin(selected, positions).all()
        # and they are exactly the top-entropy candidates, mapped back
        entropy = predictive_entropy(restricted.pool_probabilities[positions])
        expected = positions[np.argsort(-entropy, kind="stable")[: restricted.budget]]
        np.testing.assert_array_equal(selected, expected)

    @pytest.mark.parametrize("factory", [RandomStrategy, KMeansStrategy])
    def test_stochastic_baselines_stay_inside_candidates(self, problem, factory):
        context = _context(problem)
        ids = context.pool_ids[np.asarray([1, 4, 8, 15, 16, 23, 42, 52])]
        restricted = _context(problem, candidate_ids=ids)
        selected = factory().select(restricted)
        assert np.isin(selected, restricted.candidate_positions()).all()
        assert np.unique(selected).size == restricted.budget

    def test_firal_selects_inside_candidates(self, problem):
        context = _context(problem)
        ids = context.pool_ids[np.arange(0, 60, 3)]
        restricted = _context(problem, candidate_ids=ids)
        selected = _approx_firal_strategy().select(restricted)
        assert np.isin(selected, restricted.candidate_positions()).all()


# --------------------------------------------------------------------- #
# Sharded stores: per-shard filtering, offsets contract
# --------------------------------------------------------------------- #
class TestShardedFiltering:
    def test_filters_each_shard_segment(self, problem):
        n = problem.pool_features.shape[0]
        offsets = np.asarray([0, n // 3, n], dtype=np.int64)
        context = _context(problem, shard_offsets=offsets)
        f = RandomSubsampleFilter(0.5)
        ids = f.select_candidates(context, np.random.default_rng(0))
        positions = np.searchsorted(context.pool_ids, ids)
        for lo, hi in zip(offsets[:-1], offsets[1:]):
            in_shard = int(np.count_nonzero((positions >= lo) & (positions < hi)))
            assert in_shard == f.keep_count(int(hi - lo), context.budget)

    def test_empty_shard_contributes_nothing(self, problem):
        n = problem.pool_features.shape[0]
        offsets = np.asarray([0, 0, n], dtype=np.int64)  # first shard ran dry
        context = _context(problem, shard_offsets=offsets)
        ids = RandomSubsampleFilter(0.5).select_candidates(context, np.random.default_rng(0))
        assert ids.size == RandomSubsampleFilter(0.5).keep_count(n, context.budget)

    def test_sharded_session_keep_everything_matches_dense_serial(self, problem):
        base = _run(problem, _parallel_capable_strategy(), SessionConfig(), seed=0)
        sharded = _run(
            problem,
            _parallel_capable_strategy(),
            SessionConfig(
                store=ShardedPointStore.factory(num_shards=2),
                parallel_ranks=2,
                prefilter=RandomSubsampleFilter(1.0),
            ),
            seed=0,
        )
        assert sharded[0] == base[0]
        np.testing.assert_array_equal(sharded[1], base[1])

    def test_sharded_session_filters_and_selects_validly(self, problem):
        """A genuinely thinned sharded multi-rank session completes: every
        rank holds its per-shard candidate quota and selections are valid."""

        captured = []

        class Recording(RandomSubsampleFilter):
            def select_candidates(self, context, rng):
                ids = super().select_candidates(context, rng)
                positions = np.searchsorted(context.pool_ids, ids)
                captured.append((context.shard_offsets.copy(), positions))
                return ids

        curve, labeled = _run(
            problem,
            _parallel_capable_strategy(),
            SessionConfig(
                store=ShardedPointStore.factory(num_shards=2),
                parallel_ranks=2,
                prefilter=Recording(0.5),
            ),
            seed=0,
        )
        assert len(curve) == 4
        assert np.unique(labeled).size == labeled.size
        assert len(captured) == 3  # one filter evaluation per round
        for offsets, positions in captured:
            assert len(offsets) == 3
            for lo, hi in zip(offsets[:-1], offsets[1:]):
                # every rank's shard contributed candidates (offsets contract)
                assert int(np.count_nonzero((positions >= lo) & (positions < hi))) > 0
