"""Eager proposal pipelining: ``prefetch_proposal()`` == ``propose()``, bit for bit.

The pipelining contract (PR 10):

* an **adopted** prefetch is bit-identical to the synchronous computation —
  curves and labeled ids match a ``step()``-driven session for every shipped
  strategy, serial and under ``parallel_ranks=2``;
* an **unclaimed** prefetch is protocol-invisible: ``pending_proposal``
  stays ``None`` and ``observe()`` still demands a surfaced proposal;
* every state change that could make the speculative proposal stale cancels
  it — ``extend_pool`` rolls it back and recomputes over the grown pool,
  ``invalidate_proposal`` claims and discards it, ``checkpoint`` quiesces it
  and records the boundary-plus-marker a mid-proposal crash snapshot gets,
  so a resume surfaces it invalidated, never silently dropped.  These races
  are pinned with a gate strategy that holds the background job mid-select;
* a prefetch that **fails** in the background re-raises deterministically
  from the adopting ``propose()``, leaving the session at the boundary;
* exhaustion guards: no prefetch past the planned round count or a pool
  smaller than the per-round budget.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.baselines.base import SelectionStrategy
from repro.engine import ActiveSession, SessionConfig
from repro.engine.stores import StreamingPointStore

from test_engine_propose_observe import PARALLEL_STRATEGIES, _parallel_config
from test_engine_session import (
    STRATEGY_FACTORIES,
    _assert_curves_identical,
    _small_problem,
)


@pytest.fixture(scope="module")
def problem():
    return _small_problem(seed=0)


def _session(problem, name, *, seed=7, config=None, num_rounds=3, strategy=None):
    return ActiveSession(
        problem,
        strategy if strategy is not None else STRATEGY_FACTORIES[name](),
        budget_per_round=4,
        num_rounds=num_rounds,
        seed=seed,
        config=config,
    )


def _drive_prefetched(session, rounds, executor):
    """Run ``rounds`` rounds adopting an eager prefetch wherever one fits."""

    session.prefetch_proposal(executor)  # pipeline the very first round too
    for _ in range(rounds):
        session.propose()
        session.observe()
        session.prefetch_proposal(executor)
    return session.result


class _GateStrategy(SelectionStrategy):
    """Delegate whose ``select`` parks on an event — holds a prefetch in flight.

    ``started`` fires once the background job is inside ``select``;
    ``release`` lets it finish.  Only the *first* select blocks, so the
    recompute after a cancellation runs at full speed.
    """

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.started = threading.Event()
        self.release = threading.Event()
        self._gated = True

    def begin_session(self, info):
        self.inner.begin_session(info)

    def select(self, context):
        if self._gated:
            self._gated = False
            self.started.set()
            assert self.release.wait(timeout=30), "gate never released"
        return self.inner.select(context)

    def observe_labels(self, observation):
        self.inner.observe_labels(observation)

    def state_dict(self):
        return self.inner.state_dict()

    def load_state_dict(self, state):
        self.inner.load_state_dict(state)


# --------------------------------------------------------------------- #
# the acceptance pin: adopted prefetch == synchronous propose, bit for bit
# --------------------------------------------------------------------- #
class TestPrefetchBitIdentity:
    @pytest.mark.parametrize("name", sorted(STRATEGY_FACTORIES))
    def test_serial_bit_identical(self, problem, name):
        stepped = _session(problem, name)
        for _ in range(3):
            stepped.step()

        eager = _session(problem, name)
        with ThreadPoolExecutor(max_workers=1) as pool:
            _drive_prefetched(eager, 3, pool)

        _assert_curves_identical(stepped.result, eager.result)
        np.testing.assert_array_equal(stepped.store.labeled_ids, eager.store.labeled_ids)
        assert eager.prefetch_stats["scheduled"] == 3
        assert eager.prefetch_stats["adopted"] == 3
        assert eager.prefetch_stats["discarded"] == 0

    @pytest.mark.parametrize("name", PARALLEL_STRATEGIES)
    def test_parallel_ranks_bit_identical(self, problem, name):
        stepped = _session(problem, name, config=_parallel_config())
        for _ in range(3):
            stepped.step()

        eager = _session(problem, name, config=_parallel_config())
        with ThreadPoolExecutor(max_workers=1) as pool:
            _drive_prefetched(eager, 3, pool)

        _assert_curves_identical(stepped.result, eager.result)
        np.testing.assert_array_equal(stepped.store.labeled_ids, eager.store.labeled_ids)

    @pytest.mark.multiprocess
    def test_shared_memory_parallel_bit_identical(self, problem):
        config = lambda: SessionConfig(  # noqa: E731
            parallel_ranks=2, parallel_transport="shared_memory"
        )
        stepped = _session(problem, "approx-firal", config=config())
        for _ in range(3):
            stepped.step()

        eager = _session(problem, "approx-firal", config=config())
        with ThreadPoolExecutor(max_workers=1) as pool:
            _drive_prefetched(eager, 3, pool)

        _assert_curves_identical(stepped.result, eager.result)
        np.testing.assert_array_equal(stepped.store.labeled_ids, eager.store.labeled_ids)

    def test_incremental_fisher_boundary_restores(self, problem):
        """The Fisher accumulator rides the boundary snapshot through a
        prefetch-discard-recompute cycle without drifting."""

        config = lambda: SessionConfig(incremental_fisher=True)  # noqa: E731
        stepped = _session(problem, "approx-firal", config=config())
        for _ in range(3):
            stepped.step()

        eager = _session(problem, "approx-firal", config=config())
        with ThreadPoolExecutor(max_workers=1) as pool:
            for _ in range(3):
                eager.prefetch_proposal(pool)
                eager.invalidate_proposal()  # cancel the speculation...
                eager.propose()  # ...and recompute synchronously
                eager.observe()

        _assert_curves_identical(stepped.result, eager.result)


# --------------------------------------------------------------------- #
# protocol visibility and guards
# --------------------------------------------------------------------- #
class TestPrefetchProtocol:
    def test_unclaimed_prefetch_is_invisible(self, problem):
        session = _session(problem, "random")
        with ThreadPoolExecutor(max_workers=1) as pool:
            assert session.prefetch_proposal(pool) is True
            assert session.prefetch_pending is True
            assert session.pending_proposal is None
            with pytest.raises(ValueError, match="no pending proposal"):
                session.observe()
            proposal = session.propose()  # adoption surfaces it
            assert session.prefetch_pending is False
            assert session.pending_proposal is proposal
            assert session.last_propose_prefetched is True

    def test_double_prefetch_rejected(self, problem):
        session = _session(problem, "random")
        with ThreadPoolExecutor(max_workers=1) as pool:
            session.prefetch_proposal(pool)
            with pytest.raises(ValueError, match="already in flight"):
                session.prefetch_proposal(pool)

    def test_prefetch_with_open_proposal_rejected(self, problem):
        session = _session(problem, "random")
        session.propose()
        with ThreadPoolExecutor(max_workers=1) as pool:
            with pytest.raises(ValueError, match="already pending"):
                session.prefetch_proposal(pool)

    def test_exhaustion_guards_decline(self, problem):
        session = _session(problem, "random", num_rounds=1)
        session.step()
        with ThreadPoolExecutor(max_workers=1) as pool:
            assert session.prefetch_proposal(pool) is False  # planned rounds done
        assert session.prefetch_stats["scheduled"] == 0

    def test_background_failure_reraises_on_adoption(self, problem):
        switch = {"fail": True}

        class _Failing(SelectionStrategy):
            name = "failing"

            def select(self, context):
                if switch["fail"]:
                    raise RuntimeError("transient solver-side failure")
                order = np.argsort(context.pool_probabilities.max(axis=1))
                return order[: context.budget]

        session = _session(problem, "random", strategy=_Failing(), num_rounds=2)
        with ThreadPoolExecutor(max_workers=1) as pool:
            assert session.prefetch_proposal(pool) is True
            # The background job failed and rolled back; the adopting propose
            # recomputes synchronously and re-raises the same error.
            with pytest.raises(RuntimeError, match="transient solver-side failure"):
                session.propose()
            # The session survived at the boundary: once the fault clears,
            # the round proceeds normally.
            switch["fail"] = False
            session.propose()
            session.observe()
            assert session.round_index == 1


# --------------------------------------------------------------------- #
# the races: cancel-and-recompute while the prefetch is in flight
# --------------------------------------------------------------------- #
def _in_flight(problem, name, *, config=None):
    """A session with a gated prefetch parked mid-select, plus its gate."""

    gate = _GateStrategy(STRATEGY_FACTORIES[name]())
    session = _session(problem, name, strategy=gate, config=config)
    return session, gate


@pytest.mark.parametrize(
    "config_factory",
    [lambda: None, _parallel_config],
    ids=["serial", "parallel_ranks=2"],
)
class TestPrefetchRaces:
    def test_invalidate_during_in_flight_prefetch(self, problem, config_factory):
        # invalidate_proposal restores the boundary bit-exactly, so the
        # reference is simply the uninterrupted run.
        reference = _session(problem, "approx-firal", config=config_factory())
        for _ in range(3):
            reference.step()

        session, gate = _in_flight(problem, "approx-firal", config=config_factory())
        with ThreadPoolExecutor(max_workers=2) as pool:
            session.prefetch_proposal(pool)
            assert gate.started.wait(timeout=30)
            gate.release.set()
            discarded = session.invalidate_proposal()  # claims the in-flight job
            assert discarded is not None
            assert session.prefetch_pending is False
            for _ in range(3):
                session.step()

        _assert_curves_identical(reference.result, session.result)
        np.testing.assert_array_equal(
            reference.store.labeled_ids, session.store.labeled_ids
        )

    def test_extend_pool_during_in_flight_prefetch(self, problem, config_factory):
        base = config_factory()
        if base is not None:
            pytest.skip("streaming store and sharded store are exclusive")
        rng = np.random.default_rng(3)
        new_f = rng.standard_normal((6, problem.dimension))
        new_y = rng.integers(0, problem.num_classes, size=6)

        config = lambda: SessionConfig(store=StreamingPointStore.from_problem)  # noqa: E731
        reference = _session(problem, "approx-firal", config=config())
        reference.extend_pool(new_f, new_y)
        for _ in range(3):
            reference.step()

        session, gate = _in_flight(problem, "approx-firal", config=config())
        with ThreadPoolExecutor(max_workers=2) as pool:
            session.prefetch_proposal(pool)
            assert gate.started.wait(timeout=30)
            gate.release.set()
            session.extend_pool(new_f, new_y)  # cancels + rolls back first
            assert session.prefetch_stats["discarded"] == 1
            assert session.pending_proposal is None
            for _ in range(3):
                session.step()

        # The recomputed rounds saw the grown pool — identical to a session
        # that never speculated; the stale pre-extend proposal was never served.
        _assert_curves_identical(reference.result, session.result)
        np.testing.assert_array_equal(
            reference.store.labeled_ids, session.store.labeled_ids
        )

    def test_checkpoint_during_in_flight_prefetch(self, problem, config_factory, tmp_path):
        """A snapshot taken while the eager job runs records the boundary plus
        the ``pending_proposal`` marker; resume surfaces it invalidated."""

        reference = _session(problem, "approx-firal", config=config_factory())
        for _ in range(3):
            reference.step()

        session, gate = _in_flight(problem, "approx-firal", config=config_factory())
        path = tmp_path / "inflight.json"
        with ThreadPoolExecutor(max_workers=2) as pool:
            session.prefetch_proposal(pool)
            assert gate.started.wait(timeout=30)
            gate.release.set()
            session.checkpoint(path)  # quiesces the job, writes the marker

        resumed = ActiveSession.resume(
            path,
            problem,
            STRATEGY_FACTORIES["approx-firal"](),
            config=config_factory(),
        )
        surfaced = resumed.invalidated_proposal
        assert surfaced is not None and surfaced["round_index"] == 0
        for _ in range(3):
            resumed.step()

        _assert_curves_identical(reference.result, resumed.result)
        np.testing.assert_array_equal(
            reference.store.labeled_ids, resumed.store.labeled_ids
        )
