"""The serving layer: multi-tenant ``SessionManager`` over propose/observe.

What must hold for the engine to sit "behind traffic":

* **serving changes nothing** — a session driven through the service
  (worker pool, locks, batching) produces curves bit-identical to the same
  session driven directly;
* **tenants are isolated** — two sessions with different seeds served
  interleaved (and concurrently) match the same sessions run serially,
  bit for bit;
* **admission control** — session and in-flight-request ceilings reject
  with :class:`AdmissionError` instead of queueing unboundedly;
* **checkpoint policies** — ``"round"`` writes after every round,
  ``"idle"`` after the grace period, close always; ``restore_on_open``
  resumes from the snapshot, surfacing a mid-proposal invalidation;
* **protocol misuse maps to typed errors** (:class:`ProtocolError`), and
  the stdlib HTTP front speaks the same payloads with the right statuses.

``pytest-asyncio`` is not a dependency; each test drives its own event
loop via ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.engine import ActiveSession
from repro.serve import (
    AdmissionError,
    AsyncSessionClient,
    HttpFrontend,
    ProtocolError,
    ServeConfig,
    SessionExistsError,
    SessionManager,
    SessionNotFoundError,
    SessionSpec,
)

from test_engine_session import (
    STRATEGY_FACTORIES,
    _assert_curves_identical,
    _small_problem,
)


@pytest.fixture(scope="module")
def problem():
    return _small_problem(seed=0)


def _spec(problem, name="random", *, seed=7, rounds=3):
    return SessionSpec(
        problem=problem,
        strategy_factory=STRATEGY_FACTORIES[name],
        budget_per_round=4,
        num_rounds=rounds,
        seed=seed,
    )


def _direct_run(problem, name="random", *, seed=7, rounds=3):
    session = ActiveSession(
        problem, STRATEGY_FACTORIES[name](), budget_per_round=4, num_rounds=rounds, seed=seed
    )
    for _ in range(rounds):
        session.step()
    return session


async def _serve_rounds(manager, session_id, rounds):
    for _ in range(rounds):
        await manager.propose(session_id)
        await manager.observe(session_id)


# --------------------------------------------------------------------- #
# served == direct, bit for bit
# --------------------------------------------------------------------- #
class TestServedEquivalence:
    @pytest.mark.parametrize("name", ["random", "approx-firal"])
    def test_served_session_matches_direct(self, problem, name):
        direct = _direct_run(problem, name)

        async def serve():
            manager = SessionManager(ServeConfig(max_workers=2))
            try:
                await manager.open_session("t", _spec(problem, name))
                await _serve_rounds(manager, "t", 3)
                slot_session = manager._slots["t"].session
                return slot_session.result, slot_session.store.labeled_ids.copy()
            finally:
                await manager.aclose(checkpoint=False)

        result, labeled_ids = asyncio.run(serve())
        _assert_curves_identical(direct.result, result)
        np.testing.assert_array_equal(direct.store.labeled_ids, labeled_ids)

    def test_batched_dispatch_matches_direct(self, problem):
        """Request batching amortizes wakeups without changing selections."""

        direct = _direct_run(problem, "entropy")

        async def serve():
            manager = SessionManager(
                ServeConfig(max_workers=2, batch_window_seconds=0.005, batch_max_size=4)
            )
            try:
                await manager.open_session("t", _spec(problem, "entropy"))
                await _serve_rounds(manager, "t", 3)
                assert manager.stats["batches"] > 0
                return manager._slots["t"].session.result
            finally:
                await manager.aclose(checkpoint=False)

        _assert_curves_identical(direct.result, asyncio.run(serve()))


# --------------------------------------------------------------------- #
# the satellite pin: concurrent-session isolation
# --------------------------------------------------------------------- #
class TestConcurrentIsolation:
    def test_interleaved_sessions_match_serial(self, problem):
        """Two tenants with different seeds, rounds interleaved through one
        manager, produce curves bit-identical to the same sessions run
        serially — no state bleeds across slots."""

        serial_a = _direct_run(problem, "random", seed=1)
        serial_b = _direct_run(problem, "random", seed=2)

        async def serve():
            manager = SessionManager(ServeConfig(max_workers=2))
            try:
                await manager.open_session("a", _spec(problem, "random", seed=1))
                await manager.open_session("b", _spec(problem, "random", seed=2))
                for _ in range(3):  # strict interleave: a, b, a, b, ...
                    await manager.propose("a")
                    await manager.propose("b")
                    await manager.observe("a")
                    await manager.observe("b")
                return (
                    manager._slots["a"].session.result,
                    manager._slots["b"].session.result,
                )
            finally:
                await manager.aclose(checkpoint=False)

        result_a, result_b = asyncio.run(serve())
        _assert_curves_identical(serial_a.result, result_a)
        _assert_curves_identical(serial_b.result, result_b)

    def test_concurrent_task_sessions_match_serial(self, problem):
        """Same pin under true concurrency: each tenant driven by its own task,
        rounds racing through the shared worker pool."""

        serial = {
            sid: _direct_run(problem, "random", seed=seed)
            for sid, seed in [("a", 1), ("b", 2), ("c", 3)]
        }

        async def serve():
            manager = SessionManager(ServeConfig(max_workers=3))

            async def tenant(sid, seed):
                await manager.open_session(sid, _spec(problem, "random", seed=seed))
                await _serve_rounds(manager, sid, 3)
                return manager._slots[sid].session.result

            try:
                results = await asyncio.gather(
                    tenant("a", 1), tenant("b", 2), tenant("c", 3)
                )
                return dict(zip(["a", "b", "c"], results))
            finally:
                await manager.aclose(checkpoint=False)

        served = asyncio.run(serve())
        for sid in ["a", "b", "c"]:
            _assert_curves_identical(serial[sid].result, served[sid])


# --------------------------------------------------------------------- #
# admission control and typed errors
# --------------------------------------------------------------------- #
class TestAdmissionAndErrors:
    def test_session_ceiling(self, problem):
        async def serve():
            manager = SessionManager(ServeConfig(max_sessions=1))
            try:
                await manager.open_session("a", _spec(problem))
                with pytest.raises(AdmissionError, match="max_sessions=1"):
                    await manager.open_session("b", _spec(problem))
                assert manager.stats["admission_rejections"] == 1
            finally:
                await manager.aclose(checkpoint=False)

        asyncio.run(serve())

    def test_duplicate_open_rejected(self, problem):
        async def serve():
            manager = SessionManager()
            try:
                await manager.open_session("a", _spec(problem))
                with pytest.raises(SessionExistsError):
                    await manager.open_session("a", _spec(problem))
            finally:
                await manager.aclose(checkpoint=False)

        asyncio.run(serve())

    def test_unknown_session(self, problem):
        async def serve():
            manager = SessionManager()
            try:
                with pytest.raises(SessionNotFoundError):
                    await manager.propose("ghost")
            finally:
                await manager.aclose(checkpoint=False)

        asyncio.run(serve())

    def test_protocol_errors_are_typed(self, problem):
        async def serve():
            manager = SessionManager()
            try:
                await manager.open_session("a", _spec(problem))
                with pytest.raises(ProtocolError, match="no pending proposal"):
                    await manager.observe("a")
                await manager.propose("a")
                with pytest.raises(ProtocolError, match="already pending"):
                    await manager.propose("a")
                # The session survives the misuse: the open proposal completes.
                await manager.observe("a")
            finally:
                await manager.aclose(checkpoint=False)

        asyncio.run(serve())

    def test_inflight_request_ceiling(self, problem):
        """With a one-request ceiling and a slow worker, the racing second
        request is rejected rather than queued."""

        async def serve():
            manager = SessionManager(
                ServeConfig(max_workers=2, max_pending_requests=1)
            )
            try:
                await manager.open_session("a", _spec(problem, rounds=3))
                await manager.open_session("b", _spec(problem, rounds=3))

                async def spam(sid):
                    try:
                        await manager.propose(sid)
                        return "ok"
                    except AdmissionError:
                        return "rejected"

                outcomes = await asyncio.gather(spam("a"), spam("b"))
                assert "rejected" in outcomes  # one of the pair lost the race
                assert manager.stats["admission_rejections"] >= 1
            finally:
                await manager.aclose(checkpoint=False)

        asyncio.run(serve())

    def test_serve_config_rejections(self):
        cases = [
            (dict(max_sessions=0), r"ServeConfig\.max_sessions"),
            (dict(max_workers=0), r"ServeConfig\.max_workers"),
            (dict(max_pending_requests=0), r"ServeConfig\.max_pending_requests"),
            (dict(batch_window_seconds=-0.1), r"ServeConfig\.batch_window_seconds"),
            (dict(batch_max_size=0), r"ServeConfig\.batch_max_size"),
            (dict(checkpoint_policy="hourly"), r"ServeConfig\.checkpoint_policy"),
            (dict(idle_grace_seconds=-1.0), r"ServeConfig\.idle_grace_seconds"),
            (dict(checkpoint_policy="round"), r"ServeConfig\.checkpoint_dir"),
            (dict(restore_on_open=True), r"ServeConfig\.checkpoint_dir"),
        ]
        for kwargs, match in cases:
            with pytest.raises(ValueError, match=match):
                ServeConfig(**kwargs).validate()


# --------------------------------------------------------------------- #
# checkpoint policies and crash recovery
# --------------------------------------------------------------------- #
class TestCheckpointPolicies:
    def test_round_policy_writes_every_round(self, problem, tmp_path):
        async def serve():
            manager = SessionManager(
                ServeConfig(checkpoint_policy="round", checkpoint_dir=tmp_path)
            )
            try:
                await manager.open_session("a", _spec(problem))
                await _serve_rounds(manager, "a", 2)
                # Policy writes are fire-and-forget on the I/O executor —
                # flush before asserting they all landed.
                await manager.flush_checkpoints()
                assert (tmp_path / "a.json").exists()
                assert manager.stats["checkpoints"] == 2
            finally:
                await manager.aclose(checkpoint=False)

        asyncio.run(serve())

    def test_idle_policy_coalesces(self, problem, tmp_path):
        async def serve():
            manager = SessionManager(
                ServeConfig(
                    checkpoint_policy="idle",
                    idle_grace_seconds=0.05,
                    checkpoint_dir=tmp_path,
                )
            )
            try:
                await manager.open_session("a", _spec(problem))
                await _serve_rounds(manager, "a", 3)  # busy: no grace elapses
                assert manager.stats["checkpoints"] == 0
                await asyncio.sleep(0.25)  # idle: the delayed write lands
                assert manager.stats["checkpoints"] == 1
                assert (tmp_path / "a.json").exists()
            finally:
                await manager.aclose(checkpoint=False)

        asyncio.run(serve())

    def test_restore_on_open_resumes(self, problem, tmp_path):
        direct = _direct_run(problem, "random", seed=7)

        async def crash_then_recover():
            config = ServeConfig(checkpoint_dir=tmp_path, restore_on_open=True)
            manager = SessionManager(config)
            await manager.open_session("a", _spec(problem, "random", seed=7))
            await _serve_rounds(manager, "a", 1)
            await manager.aclose()  # checkpoint-at-close, then "crash"

            recovered = SessionManager(config)
            try:
                info = await recovered.open_session("a", _spec(problem, "random", seed=7))
                assert info["restored"] is True
                assert info["round_index"] == 1
                await _serve_rounds(recovered, "a", 2)
                slot_session = recovered._slots["a"].session
                return slot_session.result, slot_session.store.labeled_ids.copy()
            finally:
                await recovered.aclose(checkpoint=False)

        result, labeled_ids = asyncio.run(crash_then_recover())
        _assert_curves_identical(direct.result, result)
        np.testing.assert_array_equal(direct.store.labeled_ids, labeled_ids)

    def test_mid_proposal_crash_surfaces_invalidation(self, problem, tmp_path):
        """Service crashes while a labeler holds an open proposal: the
        re-opened session surfaces the invalidated proposal in the open
        info, and the replayed run matches the uninterrupted one."""

        direct = _direct_run(problem, "random", seed=7)

        async def crash_then_recover():
            config = ServeConfig(checkpoint_dir=tmp_path, restore_on_open=True)
            manager = SessionManager(config)
            await manager.open_session("a", _spec(problem, "random", seed=7))
            await manager.propose("a")  # labeler goes dark mid-round...
            await manager.aclose()  # ...final checkpoint carries the marker

            recovered = SessionManager(config)
            try:
                info = await recovered.open_session("a", _spec(problem, "random", seed=7))
                assert info["restored"] is True
                surfaced = info["invalidated_proposal"]
                assert surfaced is not None and surfaced["round_index"] == 0
                assert recovered.stats["invalidated_proposals"] == 1
                await _serve_rounds(recovered, "a", 3)  # replay from round 0
                return recovered._slots["a"].session.result
            finally:
                await recovered.aclose(checkpoint=False)

        _assert_curves_identical(direct.result, asyncio.run(crash_then_recover()))


# --------------------------------------------------------------------- #
# the in-process client and the HTTP front
# --------------------------------------------------------------------- #
async def _http_request(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode()
    writer.write(head + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b" ", 2)[1])
    return status, json.loads(raw.split(b"\r\n\r\n", 1)[1])


class TestClientAndHttp:
    def test_client_payloads_are_json_shaped(self, problem):
        async def serve():
            manager = SessionManager()
            client = AsyncSessionClient(manager)
            try:
                info = await client.open("t", _spec(problem))
                assert info["strategy"] == "random"
                proposal = await client.propose("t", include_features=True)
                assert sorted(proposal)[:3] == ["budget", "features", "global_ids"]
                assert len(proposal["features"]) == proposal["budget"]
                json.dumps(proposal)  # wire-safe by construction
                record = await client.observe("t")
                json.dumps(record)
                assert record["num_labeled"] == float(problem.initial_size + 4)
                closed = await client.close("t", checkpoint=False)
                assert closed["round_index"] == 1
            finally:
                await manager.aclose(checkpoint=False)

        asyncio.run(serve())

    def test_http_round_trip(self, problem):
        direct = _direct_run(problem, "random", seed=7, rounds=2)

        async def serve():
            manager = SessionManager()
            front = HttpFrontend(manager, specs={"demo": _spec(problem, seed=7)})
            host, port = await front.start()
            try:
                status, body = await _http_request(host, port, "GET", "/healthz")
                assert (status, body["status"]) == (200, "ok")

                status, body = await _http_request(
                    host, port, "POST", "/sessions/t/open", {"spec": "demo"}
                )
                assert status == 200 and body["round_index"] == 0

                selected = []
                for _ in range(2):
                    status, proposal = await _http_request(
                        host, port, "POST", "/sessions/t/propose", {}
                    )
                    assert status == 200
                    selected.extend(proposal["global_ids"])
                    status, record = await _http_request(
                        host, port, "POST", "/sessions/t/observe", {}
                    )
                    assert status == 200 and "eval_accuracy" in record

                status, listing = await _http_request(host, port, "GET", "/sessions")
                assert (status, listing["sessions"]) == (200, ["t"])
                status, _ = await _http_request(
                    host, port, "POST", "/sessions/t/close", {"checkpoint": False}
                )
                assert status == 200
                return selected
            finally:
                await front.stop()
                await manager.aclose(checkpoint=False)

        selected = asyncio.run(serve())
        # The HTTP-served selections are the direct session's, bit for bit.
        np.testing.assert_array_equal(
            np.asarray(selected), direct.store.labeled_ids[problem.initial_size :]
        )

    def test_http_error_statuses(self, problem):
        async def serve():
            manager = SessionManager(ServeConfig(max_sessions=1))
            front = HttpFrontend(manager, specs={"demo": _spec(problem)})
            host, port = await front.start()
            try:
                checks = [
                    ("GET", "/nope", None, 404),  # unknown route
                    ("POST", "/sessions/t/open", {"spec": "ghost"}, 404),  # unknown spec
                    ("POST", "/sessions/ghost/propose", {}, 404),  # unknown session
                ]
                for method, path, body, expected in checks:
                    status, payload = await _http_request(host, port, method, path, body)
                    assert status == expected, (path, payload)

                await _http_request(host, port, "POST", "/sessions/t/open", {"spec": "demo"})
                status, _ = await _http_request(
                    host, port, "POST", "/sessions/t/observe", {}
                )
                assert status == 409  # protocol misuse
                status, _ = await _http_request(
                    host, port, "POST", "/sessions/u/open", {"spec": "demo"}
                )
                assert status == 503  # admission: max_sessions=1
            finally:
                await front.stop()
                await manager.aclose(checkpoint=False)

        asyncio.run(serve())
