"""Tests for the FTRL ν bisection solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.bisection import bisect_scalar, find_ftrl_nu


class TestBisectScalar:
    def test_finds_root_of_linear_function(self):
        root = bisect_scalar(lambda x: 3.0 - x, 0.0, 10.0)
        assert root == pytest.approx(3.0, abs=1e-8)

    def test_finds_root_of_decreasing_nonlinear_function(self):
        root = bisect_scalar(lambda x: 1.0 / (x + 1.0) ** 2 - 0.25, 0.0, 10.0)
        assert root == pytest.approx(1.0, abs=1e-7)

    def test_invalid_bracket_rejected(self):
        with pytest.raises(ValueError):
            bisect_scalar(lambda x: x, 0.0, 1.0)  # increasing: fn(lower) < 0

    def test_upper_not_above_lower_rejected(self):
        with pytest.raises(ValueError):
            bisect_scalar(lambda x: -x, 2.0, 1.0)


class TestFindFtrlNu:
    def test_zero_eigenvalues_give_sqrt_m(self):
        """With H = 0 the equation sum (nu)^{-2} = m/nu^2 = 1 gives nu = sqrt(m),
        matching the paper's initialization A_1 = sqrt(dc) I."""

        for m in (1, 4, 9, 36):
            nu = find_ftrl_nu(np.zeros(m))
            assert nu == pytest.approx(np.sqrt(m), rel=1e-8)

    def test_solution_satisfies_equation(self):
        rng = np.random.default_rng(0)
        lam = rng.uniform(0.0, 5.0, size=24)
        nu = find_ftrl_nu(lam)
        assert float(np.sum(1.0 / (nu + lam) ** 2)) == pytest.approx(1.0, abs=1e-8)

    def test_large_eigenvalues_give_negative_shift(self):
        """When all eigenvalues are huge, the root can be below zero but the
        shifted values stay positive."""

        lam = np.full(10, 100.0)
        nu = find_ftrl_nu(lam)
        assert float(np.sum(1.0 / (nu + lam) ** 2)) == pytest.approx(1.0, abs=1e-8)
        assert np.all(nu + lam > 0)

    def test_matrix_shaped_input_is_flattened(self):
        lam = np.ones((3, 4))
        nu = find_ftrl_nu(lam)
        assert float(np.sum(1.0 / (nu + lam) ** 2)) == pytest.approx(1.0, abs=1e-8)

    def test_negative_eigenvalues_rejected(self):
        with pytest.raises(ValueError):
            find_ftrl_nu(np.array([-1.0, 2.0]))

    def test_tiny_negative_roundoff_tolerated(self):
        nu = find_ftrl_nu(np.array([-1e-12, 1.0, 2.0]))
        assert np.isfinite(nu)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            find_ftrl_nu(np.array([]))

    def test_trace_normalization_of_ftrl_matrix(self):
        """Building A_{t+1} = V (nu I + Lambda) V^T indeed gives Trace(A^{-2}) = 1."""

        rng = np.random.default_rng(1)
        M = rng.standard_normal((12, 12))
        M = M @ M.T
        lam, V = np.linalg.eigh(M)
        nu = find_ftrl_nu(lam)
        A = (V * (nu + lam)) @ V.T
        assert float(np.trace(np.linalg.inv(A @ A))) == pytest.approx(1.0, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=60),
    scale=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_nu_satisfies_equation(size, scale, seed):
    rng = np.random.default_rng(seed)
    lam = rng.uniform(0.0, scale + 1e-6, size=size)
    nu = find_ftrl_nu(lam)
    assert float(np.sum(1.0 / (nu + lam) ** 2)) == pytest.approx(1.0, abs=1e-6)
