"""Tests for the end-to-end ExactFIRAL / ApproxFIRAL selectors."""

import numpy as np
import pytest

from repro.core.config import RelaxConfig, RoundConfig
from repro.core.firal import ApproxFIRAL, ExactFIRAL
from tests.conftest import make_fisher_dataset


@pytest.fixture
def dataset():
    return make_fisher_dataset(seed=21, num_pool=24, num_labeled=6, dimension=3, num_classes=3)


def fast_relax_config(**kwargs):
    defaults = dict(max_iterations=5, track_objective="none", seed=0)
    defaults.update(kwargs)
    return RelaxConfig(**defaults)


class TestApproxFIRAL:
    def test_selects_budget_unique_indices(self, dataset):
        selector = ApproxFIRAL(fast_relax_config(), RoundConfig(eta=1.0))
        result = selector.select(dataset, budget=5)
        assert result.budget == 5
        assert len(np.unique(result.selected_indices)) == 5

    def test_result_contains_relax_and_round(self, dataset):
        selector = ApproxFIRAL(fast_relax_config(), RoundConfig(eta=1.0))
        result = selector.select(dataset, budget=4)
        assert result.relax.weights.shape == (dataset.num_pool,)
        assert result.round.eta == 1.0
        assert result.metadata["method"] == "approx-firal"
        assert result.total_time() > 0

    def test_eta_grid_search_used_when_eta_none(self, dataset):
        selector = ApproxFIRAL(fast_relax_config(), RoundConfig(eta=None, eta_grid=(0.5, 2.0)))
        result = selector.select(dataset, budget=4)
        assert result.round.eta in (0.5, 2.0)
        assert result.round.eta_score is not None

    def test_deterministic_given_seed(self, dataset):
        a = ApproxFIRAL(fast_relax_config(seed=3), RoundConfig(eta=1.0)).select(dataset, 4)
        b = ApproxFIRAL(fast_relax_config(seed=3), RoundConfig(eta=1.0)).select(dataset, 4)
        np.testing.assert_array_equal(a.selected_indices, b.selected_indices)

    def test_budget_validation(self, dataset):
        selector = ApproxFIRAL(fast_relax_config(), RoundConfig(eta=1.0))
        with pytest.raises(ValueError):
            selector.select(dataset, budget=0)
        with pytest.raises(ValueError):
            selector.select(dataset, budget=dataset.num_pool + 1)

    def test_default_configuration_matches_paper(self):
        selector = ApproxFIRAL()
        assert selector.relax_config.num_probes == 10
        assert selector.relax_config.cg_tolerance == pytest.approx(0.1)
        assert selector.relax_config.objective_tolerance == pytest.approx(1e-4)


class TestExactFIRAL:
    def test_selects_budget_unique_indices(self, dataset):
        selector = ExactFIRAL(RelaxConfig(max_iterations=5, track_objective="exact"), RoundConfig(eta=1.0))
        result = selector.select(dataset, budget=4)
        assert result.budget == 4
        assert len(np.unique(result.selected_indices)) == 4
        assert result.metadata["method"] == "exact-firal"

    def test_default_relax_tracks_exact_objective(self):
        assert ExactFIRAL().relax_config.track_objective == "exact"

    def test_exact_and_approx_overlap_on_easy_instance(self, dataset):
        """The two selectors should pick strongly overlapping batches — the
        paper's accuracy equivalence (Fig. 2) rests on this."""

        budget = 6
        exact = ExactFIRAL(RelaxConfig(max_iterations=10), RoundConfig(eta=1.0)).select(dataset, budget)
        approx = ApproxFIRAL(
            RelaxConfig(max_iterations=10, track_objective="none", num_probes=40, cg_tolerance=1e-3),
            RoundConfig(eta=1.0),
        ).select(dataset, budget)
        overlap = len(set(exact.selected_indices.tolist()) & set(approx.selected_indices.tolist()))
        assert overlap >= budget // 2
