"""Tests for the exact ROUND solver (Algorithm 1, Lines 10-19)."""

import numpy as np
import pytest

from repro.core.config import RoundConfig
from repro.core.exact_round import exact_round
from tests.conftest import make_fisher_dataset


@pytest.fixture
def dataset():
    return make_fisher_dataset(seed=8, num_pool=18, num_labeled=6, dimension=3, num_classes=3)


@pytest.fixture
def z_relaxed(dataset):
    rng = np.random.default_rng(0)
    z = rng.uniform(0, 1, size=dataset.num_pool)
    return 4.0 * z / z.sum()


class TestExactRound:
    def test_selects_requested_budget(self, dataset, z_relaxed):
        result = exact_round(dataset, z_relaxed, budget=4, eta=1.0)
        assert len(result.selected_indices) == 4

    def test_indices_unique_without_repeats(self, dataset, z_relaxed):
        result = exact_round(dataset, z_relaxed, budget=6, eta=1.0)
        assert len(np.unique(result.selected_indices)) == 6

    def test_indices_in_range(self, dataset, z_relaxed):
        result = exact_round(dataset, z_relaxed, budget=4, eta=1.0)
        assert np.all(result.selected_indices >= 0)
        assert np.all(result.selected_indices < dataset.num_pool)

    def test_allow_repeats_can_reselect(self, dataset, z_relaxed):
        cfg = RoundConfig(eta=1.0, allow_repeats=True)
        result = exact_round(dataset, z_relaxed, budget=4, eta=1.0, config=cfg)
        assert len(result.selected_indices) == 4  # may contain repeats; only length guaranteed

    def test_deterministic(self, dataset, z_relaxed):
        a = exact_round(dataset, z_relaxed, budget=4, eta=1.0)
        b = exact_round(dataset, z_relaxed, budget=4, eta=1.0)
        np.testing.assert_array_equal(a.selected_indices, b.selected_indices)

    def test_objective_trace_recorded(self, dataset, z_relaxed):
        result = exact_round(dataset, z_relaxed, budget=3, eta=1.0)
        assert len(result.objective_trace) == 3
        assert all(np.isfinite(v) for v in result.objective_trace)

    def test_eta_changes_selection_possible(self, dataset, z_relaxed):
        """Different eta values generally lead to different FTRL trajectories.
        (Not guaranteed for every instance, so only check both run fine.)"""

        small = exact_round(dataset, z_relaxed, budget=4, eta=0.01)
        large = exact_round(dataset, z_relaxed, budget=4, eta=50.0)
        assert len(small.selected_indices) == len(large.selected_indices) == 4

    def test_invalid_eta_rejected(self, dataset, z_relaxed):
        with pytest.raises(ValueError):
            exact_round(dataset, z_relaxed, budget=2, eta=0.0)

    def test_budget_larger_than_pool_rejected(self, dataset, z_relaxed):
        with pytest.raises(ValueError):
            exact_round(dataset, z_relaxed, budget=dataset.num_pool + 1, eta=1.0)

    def test_wrong_z_length_rejected(self, dataset):
        with pytest.raises(ValueError):
            exact_round(dataset, np.ones(3), budget=2, eta=1.0)

    def test_timings_components(self, dataset, z_relaxed):
        result = exact_round(dataset, z_relaxed, budget=2, eta=1.0)
        assert result.timings.get("objective_function") > 0
        assert result.timings.get("compute_eigenvalues") > 0

    def test_greedy_first_pick_maximizes_trace_reduction(self, dataset, z_relaxed):
        """The first selected point is the argmin of the trace objective over
        all candidates — verify against a brute-force evaluation (Eq. 9)."""

        eta, budget = 1.0, 3
        result = exact_round(dataset, z_relaxed, budget=budget, eta=eta)

        from repro.fisher.hessian import point_hessian_dense

        dc = dataset.joint_dimension
        sigma = dataset.sigma_dense(z_relaxed) + 1e-6 * np.eye(dc)
        w, V = np.linalg.eigh(sigma)
        inv_sqrt = (V * (1.0 / np.sqrt(w))) @ V.T
        h_o = inv_sqrt @ dataset.labeled_hessian_dense() @ inv_sqrt
        A1 = np.sqrt(dc) * np.eye(dc)
        values = []
        for i in range(dataset.num_pool):
            Hi = inv_sqrt @ point_hessian_dense(
                dataset.pool_features[i], dataset.pool_probabilities[i]
            ) @ inv_sqrt
            values.append(float(np.trace(np.linalg.inv(A1 + eta / budget * h_o + eta * Hi))))
        assert result.selected_indices[0] == int(np.argmin(values))
