"""Tests for FisherDataset and SigmaOperator."""

import numpy as np
import pytest

from repro.fisher.operators import FisherDataset, SigmaOperator
from tests.conftest import make_fisher_dataset, random_probabilities


@pytest.fixture
def dataset():
    return make_fisher_dataset(seed=9, num_pool=20, num_labeled=5, dimension=4, num_classes=3)


class TestFisherDataset:
    def test_sizes(self, dataset):
        assert dataset.num_pool == 20
        assert dataset.num_labeled == 5
        assert dataset.dimension == 4
        assert dataset.num_classes == 3
        assert dataset.joint_dimension == 12

    def test_sigma_matvec_consistency(self, dataset):
        rng = np.random.default_rng(0)
        z = rng.uniform(0, 1, size=dataset.num_pool)
        v = rng.standard_normal(dataset.joint_dimension)
        np.testing.assert_allclose(
            dataset.sigma_matvec(v, z), dataset.sigma_dense(z) @ v, rtol=1e-7, atol=1e-8
        )

    def test_pool_block_diagonal_matches_dense(self, dataset):
        rng = np.random.default_rng(1)
        z = rng.uniform(0, 1, size=dataset.num_pool)
        bd = dataset.sigma_block_diagonal(z)
        dense = dataset.sigma_dense(z)
        d = dataset.dimension
        for k in range(dataset.num_classes):
            sl = slice(k * d, (k + 1) * d)
            np.testing.assert_allclose(bd.blocks[k], dense[sl, sl], rtol=1e-7, atol=1e-9)

    def test_labeled_matvec_matches_dense(self, dataset):
        rng = np.random.default_rng(2)
        v = rng.standard_normal(dataset.joint_dimension)
        np.testing.assert_allclose(
            dataset.labeled_hessian_matvec(v),
            dataset.labeled_hessian_dense() @ v,
            rtol=1e-7,
            atol=1e-8,
        )

    def test_dimension_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            FisherDataset(
                pool_features=rng.standard_normal((5, 3)),
                pool_probabilities=random_probabilities(rng, 5, 2),
                labeled_features=rng.standard_normal((2, 4)),
                labeled_probabilities=random_probabilities(rng, 2, 2),
            )

    def test_class_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            FisherDataset(
                pool_features=rng.standard_normal((5, 3)),
                pool_probabilities=random_probabilities(rng, 5, 2),
                labeled_features=rng.standard_normal((2, 3)),
                labeled_probabilities=random_probabilities(rng, 2, 3),
            )


class TestSigmaOperator:
    def test_matvec_matches_dense(self, dataset):
        rng = np.random.default_rng(3)
        z = rng.uniform(0, 1, size=dataset.num_pool)
        op = SigmaOperator(dataset, z)
        v = rng.standard_normal(dataset.joint_dimension)
        np.testing.assert_allclose(op.matvec(v), op.dense() @ v, rtol=1e-6, atol=1e-7)

    def test_regularization_added(self, dataset):
        z = np.ones(dataset.num_pool) * 0.1
        op = SigmaOperator(dataset, z, regularization=0.5)
        v = np.ones(dataset.joint_dimension)
        plain = SigmaOperator(dataset, z).matvec(v)
        np.testing.assert_allclose(op.matvec(v), plain + 0.5 * v, rtol=1e-6)

    def test_preconditioner_is_block_inverse(self, dataset):
        rng = np.random.default_rng(4)
        z = rng.uniform(0.1, 1, size=dataset.num_pool)
        op = SigmaOperator(dataset, z, regularization=1e-3)
        v = rng.standard_normal(dataset.joint_dimension)
        # Applying B then B^{-1} must round-trip.
        np.testing.assert_allclose(
            op.precondition(op.block_diagonal.matvec(v)), v, rtol=1e-4, atol=1e-5
        )

    def test_without_preconditioner_is_identity(self, dataset):
        z = np.ones(dataset.num_pool) * 0.1
        op = SigmaOperator(dataset, z, build_preconditioner=False)
        v = np.ones(dataset.joint_dimension)
        np.testing.assert_array_equal(op.precondition(v), v)

    def test_negative_weights_rejected(self, dataset):
        with pytest.raises(ValueError):
            SigmaOperator(dataset, -np.ones(dataset.num_pool))

    def test_wrong_length_weights_rejected(self, dataset):
        with pytest.raises(ValueError):
            SigmaOperator(dataset, np.ones(dataset.num_pool + 1))
