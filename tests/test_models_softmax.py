"""Tests for the softmax primitives and the NLL loss/gradient."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.softmax import (
    log_softmax,
    negative_log_likelihood,
    nll_and_gradient,
    softmax,
    softmax_probabilities,
)


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.standard_normal((20, 6)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-12)

    def test_probabilities_nonnegative(self, rng):
        assert np.all(softmax(rng.standard_normal((10, 4))) >= 0)

    def test_large_logits_are_stable(self):
        probs = softmax(np.array([[1000.0, 0.0, -1000.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_shift_invariance(self, rng):
        logits = rng.standard_normal((5, 3))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 7.0), rtol=1e-10)

    def test_log_softmax_consistency(self, rng):
        logits = rng.standard_normal((5, 3))
        np.testing.assert_allclose(np.exp(log_softmax(logits)), softmax(logits), rtol=1e-12)

    def test_softmax_probabilities_shapes(self, rng):
        X = rng.standard_normal((7, 4))
        theta = rng.standard_normal((4, 3))
        probs = softmax_probabilities(X, theta)
        assert probs.shape == (7, 3)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-10)

    def test_softmax_probabilities_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            softmax_probabilities(rng.standard_normal((7, 4)), rng.standard_normal((5, 3)))


class TestNLL:
    def test_uniform_prediction_loss_is_log_c(self, rng):
        X = rng.standard_normal((10, 4))
        y = rng.integers(0, 3, size=10)
        theta = np.zeros((4, 3))
        loss = negative_log_likelihood(theta, X, y)
        assert loss == pytest.approx(np.log(3.0), rel=1e-10)

    def test_gradient_matches_finite_differences(self, rng):
        X = rng.standard_normal((12, 3))
        y = rng.integers(0, 4, size=12)
        theta = rng.standard_normal((3, 4)) * 0.1
        loss, grad = nll_and_gradient(theta, X, y, l2_regularization=0.3)

        eps = 1e-6
        numeric = np.zeros_like(theta)
        for i in range(theta.shape[0]):
            for j in range(theta.shape[1]):
                plus = theta.copy()
                plus[i, j] += eps
                minus = theta.copy()
                minus[i, j] -= eps
                numeric[i, j] = (
                    negative_log_likelihood(plus, X, y, l2_regularization=0.3)
                    - negative_log_likelihood(minus, X, y, l2_regularization=0.3)
                ) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, rtol=1e-4, atol=1e-6)

    def test_sample_weights_change_loss(self, rng):
        X = rng.standard_normal((8, 3))
        y = rng.integers(0, 2, size=8)
        theta = rng.standard_normal((3, 2))
        w = np.ones(8)
        w[0] = 10.0
        unweighted = negative_log_likelihood(theta, X, y)
        weighted = negative_log_likelihood(theta, X, y, sample_weight=w)
        assert unweighted != pytest.approx(weighted)

    def test_zero_weights_rejected(self, rng):
        X = rng.standard_normal((4, 3))
        y = rng.integers(0, 2, size=4)
        with pytest.raises(ValueError):
            negative_log_likelihood(np.zeros((3, 2)), X, y, sample_weight=np.zeros(4))

    def test_negative_regularization_rejected(self, rng):
        X = rng.standard_normal((4, 3))
        y = rng.integers(0, 2, size=4)
        with pytest.raises(ValueError):
            negative_log_likelihood(np.zeros((3, 2)), X, y, l2_regularization=-1.0)

    def test_label_out_of_range_rejected(self, rng):
        X = rng.standard_normal((4, 3))
        with pytest.raises(ValueError):
            negative_log_likelihood(np.zeros((3, 2)), X, np.array([0, 1, 2, 0]))


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    c=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_softmax_is_distribution(n, c, seed):
    rng = np.random.default_rng(seed)
    probs = softmax(rng.standard_normal((n, c)) * 10.0)
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)
