#!/usr/bin/env python
"""Candidate prefiltering: score a fraction of the pool, keep the accuracy.

Every exact FIRAL round is O(pool size) in both RELAX and the fused ROUND
scoring.  A ``SessionConfig.prefilter`` restricts each round to a candidate
subset *before* the exact solvers run — this example runs the same
active-learning session exact and under each of the three shipped filters
(random subsample, k-means diversity quotas, cheap-score top-k) and prints
the per-round selection time and accuracy side by side.

Two contracts worth seeing in the output:

* keep-everything settings (``keep_ratio=1.0``) select **bit-identical**
  points to the unfiltered session — the filter stage is free to leave on;
* at ``keep_ratio < 1`` the trade is measured, not assumed — the committed
  frontier lives in ``benchmarks/results/BENCH_prefilter_frontier.json``.

Run with::

    python examples/prefiltered_session.py
"""

from __future__ import annotations

from repro import ApproxFIRAL, RelaxConfig, RoundConfig, build_problem
from repro.baselines import FIRALStrategy
from repro.engine import (
    ActiveSession,
    DiversityFilter,
    RandomSubsampleFilter,
    SessionConfig,
    TopKScoreFilter,
)

ROUNDS = 4
BUDGET = 10
KEEP = 0.3


def strategy():
    return FIRALStrategy(
        ApproxFIRAL(
            RelaxConfig(max_iterations=15, track_objective="none", seed=0),
            RoundConfig(eta=1.0),
        )
    )


def run(problem, prefilter):
    session = ActiveSession(
        problem,
        strategy(),
        budget_per_round=BUDGET,
        num_rounds=ROUNDS,
        seed=0,
        config=SessionConfig(prefilter=prefilter),
    )
    result = session.run(record_initial=False)
    selection = sum(r.selection_seconds for r in result.records) / ROUNDS
    final = result.records[-1].eval_accuracy
    ids = session.store.labeled_ids[problem.initial_size :]
    return selection, final, ids


def main() -> None:
    problem = build_problem("cifar10", scale=0.5, seed=1)
    print(f"problem: {problem.summary()}")
    print(f"rounds={ROUNDS}, budget={BUDGET}, keep_ratio={KEEP}\n")

    exact_selection, exact_final, exact_ids = run(problem, None)
    print(f"{'configuration':>24}  {'sel s/round':>11}  {'speedup':>7}  {'final acc':>9}")
    print(f"{'exact (no prefilter)':>24}  {exact_selection:11.3f}  {'1.00x':>7}  {exact_final:9.4f}")

    filters = [
        ("random", RandomSubsampleFilter(KEEP)),
        ("diversity", DiversityFilter(KEEP)),
        ("topk", TopKScoreFilter(KEEP)),
    ]
    for name, prefilter in filters:
        selection, final, _ = run(problem, prefilter)
        speedup = exact_selection / max(selection, 1e-12)
        print(
            f"{name + f' (keep {KEEP})':>24}  {selection:11.3f}  "
            f"{speedup:6.2f}x  {final:9.4f}  (delta {final - exact_final:+.4f})"
        )

    # Keep-everything is the identity: bit-identical selections.
    _, _, identity_ids = run(problem, RandomSubsampleFilter(1.0))
    assert (identity_ids == exact_ids).all()
    print("\nkeep_ratio=1.0 selected bit-identical points to the exact session.")


if __name__ == "__main__":
    main()
