"""Drive an active-learning run through the stateful session engine.

Demonstrates what the ``repro.engine`` layer adds over the one-shot
``run_active_learning`` call:

* round-by-round control (``session.step()``) with per-round setup/selection
  timings,
* the cross-round fast path (``SessionConfig.fast()``: value-exact resident
  pool + reusing the previous round's winning η; the selection-changing
  ``incremental_fisher`` / ``relax_warm_start`` modes stay opt-in — see
  ``SessionConfig.fast`` for the measured reasons),
* checkpointing a long run to JSON and resuming the analysis offline.

Run with:

    PYTHONPATH=src python examples/stateful_session.py
"""

from __future__ import annotations

import pathlib
import tempfile

from repro import ApproxFIRAL, RelaxConfig, RoundConfig, build_problem
from repro.active.results import ExperimentResult
from repro.baselines import FIRALStrategy
from repro.engine import ActiveSession, SessionConfig


def main() -> None:
    problem = build_problem("cifar10", scale=0.05, seed=0)
    print(problem.summary())

    strategy = FIRALStrategy(
        ApproxFIRAL(RelaxConfig(max_iterations=15, seed=0), RoundConfig(eta=1.0))
    )
    session = ActiveSession(
        problem,
        strategy,
        budget_per_round=10,
        num_rounds=4,
        seed=0,
        config=SessionConfig.fast(),
    )
    session.record_initial()

    for round_index in range(4):
        record = session.step()
        print(
            f"round {round_index + 1}: labels={record.num_labeled:4d} "
            f"eval_acc={record.eval_accuracy:.4f} "
            f"setup={record.setup_seconds * 1e3:7.1f}ms "
            f"select={record.selection_seconds * 1e3:7.1f}ms"
        )

    # Checkpoint the curve and reload it as an offline analysis would.
    checkpoint = pathlib.Path(tempfile.gettempdir()) / "firal_session_curve.json"
    session.result.save(checkpoint)
    restored = ExperimentResult.load(checkpoint)
    print(f"\ncheckpointed to {checkpoint} and reloaded:")
    print(restored.to_table())


if __name__ == "__main__":
    main()
