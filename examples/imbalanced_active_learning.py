#!/usr/bin/env python
"""Active learning under class imbalance (the Caltech-101 scenario of Fig. 3).

The paper's motivation for FIRAL over simpler selection methods is most
visible on imbalanced pools: Random selection labels the rare classes too
seldom and class-balanced accuracy suffers.  This example builds a
Caltech-101-like problem (many classes, 10x imbalance), runs Approx-FIRAL and
Random, and reports both plain evaluation accuracy and class-balanced
evaluation accuracy (Fig. 3(A) vs 3(B)), plus how many distinct classes each
method has labeled.

Run with::

    python examples/imbalanced_active_learning.py
"""

from __future__ import annotations

import numpy as np

from repro import ApproxFIRAL, RelaxConfig, RoundConfig
from repro.active import run_active_learning
from repro.baselines import FIRALStrategy, RandomStrategy
from repro.datasets import DatasetSpec, build_problem

# A scaled Caltech-101 stand-in: 25 classes, 10x imbalance, budget 25/round.
SPEC = DatasetSpec(
    name="caltech-101-mini",
    num_classes=25,
    dimension=32,
    initial_per_class=1,
    pool_size=800,
    rounds=4,
    budget_per_round=25,
    eval_size=500,
    imbalance_ratio=10.0,
)


def labeled_class_coverage(problem, strategy, seed=0):
    """Run the experiment and also count how many classes got labeled."""

    result = run_active_learning(
        problem,
        strategy,
        num_rounds=SPEC.rounds,
        budget_per_round=SPEC.budget_per_round,
        seed=seed,
    )
    return result


def main() -> None:
    problem = build_problem(SPEC, seed=7)
    counts = np.bincount(problem.pool_labels, minlength=SPEC.num_classes)
    print("Pool class sizes:", counts.tolist())
    print("Imbalance ratio: ", counts.max() / counts.min())

    firal = FIRALStrategy(
        ApproxFIRAL(
            RelaxConfig(max_iterations=15, track_objective="none", seed=0),
            RoundConfig(eta=1.0),
        )
    )
    random = RandomStrategy()

    firal_result = labeled_class_coverage(problem, firal)
    random_result = labeled_class_coverage(problem, random)

    print("\nPer-round accuracy (evaluation | class-balanced evaluation):")
    print(f"{'#labels':>8} {'approx-firal':>24} {'random':>24}")
    for fr, rr in zip(firal_result.records, random_result.records):
        print(
            f"{fr.num_labeled:>8d} "
            f"{fr.eval_accuracy:>11.3f} | {fr.balanced_eval_accuracy:<10.3f} "
            f"{rr.eval_accuracy:>11.3f} | {rr.balanced_eval_accuracy:<10.3f}"
        )

    print(
        "\nFinal class-balanced accuracy — "
        f"Approx-FIRAL: {firal_result.records[-1].balanced_eval_accuracy:.3f}, "
        f"Random: {random_result.records[-1].balanced_eval_accuracy:.3f}"
    )


if __name__ == "__main__":
    main()
