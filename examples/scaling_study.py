#!/usr/bin/env python
"""Strong/weak scaling study of the distributed RELAX and ROUND solvers.

Reproduces the structure of the paper's § IV-C study (Figs. 6-7) on the
simulated cluster: one RELAX mirror-descent iteration and one ROUND selection
are timed for 1-12 ranks, reporting measured per-rank compute (max over
ranks), the modeled MPI time for the recorded collective traffic, and the
fully analytic A100 estimate.

Run with::

    python examples/scaling_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import RelaxConfig
from repro.fisher.operators import FisherDataset
from repro.parallel import SimulatedCluster
from repro.utils.random import as_generator

RANKS = (1, 2, 3, 6, 12)
DIMENSION = 32
NUM_CLASSES = 20
STRONG_POOL = 2400
WEAK_PER_RANK = 200


def random_probabilities(rng, n, c):
    logits = rng.standard_normal((n, c))
    expd = np.exp(logits - logits.max(axis=1, keepdims=True))
    return expd / expd.sum(axis=1, keepdims=True)


def make_dataset(total_points: int, seed: int = 0) -> FisherDataset:
    rng = as_generator(seed)
    return FisherDataset(
        pool_features=rng.standard_normal((total_points, DIMENSION)),
        pool_probabilities=random_probabilities(rng, total_points, NUM_CLASSES),
        labeled_features=rng.standard_normal((2 * NUM_CLASSES, DIMENSION)),
        labeled_probabilities=random_probabilities(rng, 2 * NUM_CLASSES, NUM_CLASSES),
    )


def main() -> None:
    cluster = SimulatedCluster()
    relax_config = RelaxConfig(max_iterations=1, track_objective="none", seed=0)

    print(f"Strong scaling, RELAX step (n={STRONG_POOL}, d={DIMENSION}, c={NUM_CLASSES}):")
    strong_relax = cluster.strong_scaling(
        lambda: make_dataset(STRONG_POOL), RANKS, step="relax", budget=10, relax_config=relax_config
    )
    for m in strong_relax:
        print("  " + m.row())

    print(f"\nWeak scaling, RELAX step ({WEAK_PER_RANK} points per rank):")
    weak_relax = cluster.weak_scaling(
        make_dataset, RANKS, step="relax", points_per_rank=WEAK_PER_RANK, budget=10,
        relax_config=relax_config,
    )
    for m in weak_relax:
        print("  " + m.row())

    print(f"\nStrong scaling, ROUND step (n={STRONG_POOL}):")
    strong_round = cluster.strong_scaling(
        lambda: make_dataset(STRONG_POOL), RANKS, step="round", budget=1, eta=1.0
    )
    for m in strong_round:
        print("  " + m.row())

    print(f"\nWeak scaling, ROUND step ({WEAK_PER_RANK} points per rank):")
    weak_round = cluster.weak_scaling(
        make_dataset, RANKS, step="round", points_per_rank=WEAK_PER_RANK, budget=1, eta=1.0
    )
    for m in weak_round:
        print("  " + m.row())

    speedup = strong_relax[0].measured_total() / strong_relax[-1].measured_total()
    print(f"\nRELAX strong-scaling speedup at {RANKS[-1]} ranks: {speedup:.1f}x")


if __name__ == "__main__":
    main()
