#!/usr/bin/env python
"""Compare all five selection methods of the paper on balanced and imbalanced pools.

Reproduces a miniature version of Fig. 2: Random, K-Means, Entropy,
Exact-FIRAL and Approx-FIRAL on a CIFAR-10-like dataset and its imbalanced
variant (10x class-size ratio).  Stochastic baselines are averaged over
several trials, as in the paper.

Run with::

    python examples/compare_methods.py
"""

from __future__ import annotations

from repro import ApproxFIRAL, ExactFIRAL, RelaxConfig, RoundConfig, build_problem
from repro.active import run_active_learning, run_trials
from repro.active.results import compare_final_accuracy
from repro.baselines import EntropyStrategy, FIRALStrategy, KMeansStrategy, RandomStrategy

ROUNDS = 3
BUDGET = 10
TRIALS = 5


def approx_firal():
    return FIRALStrategy(
        ApproxFIRAL(
            RelaxConfig(max_iterations=15, track_objective="none", seed=0),
            RoundConfig(eta=1.0),
        )
    )


def exact_firal():
    return FIRALStrategy(ExactFIRAL(RelaxConfig(max_iterations=15), RoundConfig(eta=1.0)))


def run_on(dataset_name: str) -> None:
    problem = build_problem(dataset_name, scale=0.08, seed=2)
    print(f"\n=== {dataset_name}: {problem.summary()} ===")

    aggregates = []
    for factory, trials in ((RandomStrategy, TRIALS), (KMeansStrategy, TRIALS), (EntropyStrategy, 1)):
        agg = run_trials(
            problem, factory, num_rounds=ROUNDS, budget_per_round=BUDGET, num_trials=trials, seed=0
        )
        aggregates.append(agg)
        print()
        print(agg.to_table())

    for name, strategy in (("exact-firal", exact_firal()), ("approx-firal", approx_firal())):
        result = run_active_learning(
            problem, strategy, num_rounds=ROUNDS, budget_per_round=BUDGET, seed=0
        )
        print()
        print(result.to_table())

    print()
    print(compare_final_accuracy(aggregates))


def main() -> None:
    run_on("cifar10")
    run_on("imb-cifar10")


if __name__ == "__main__":
    main()
