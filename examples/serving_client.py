"""A labeling client against the multi-tenant session service.

The classic active-learning driver loop — submit the unlabeled pool,
receive a query set, post labels, repeat — run against ``repro.serve``
instead of a local session object.  Three acts:

* **multi-tenant loop**: two tenants (Approx-FIRAL and an entropy baseline)
  interleave propose/observe rounds through one :class:`SessionManager`;
  the service orders each tenant's rounds with a per-session lock and runs
  the solver halves on its worker pool, and the curves are bit-identical to
  the same sessions run directly;
* **crash recovery**: the service "crashes" while a proposal is open; on
  restart, ``restore_on_open`` resumes the tenant from its checkpoint at
  the pre-proposal boundary and surfaces the invalidated proposal in the
  open-info payload — the client simply re-proposes;
* **eager pipelining**: the same tenant re-run with ``pipeline="eager"`` —
  while the "labeler" thinks, the service precomputes the next proposal,
  so the client-observed propose latency collapses to a queue round-trip
  (printed side by side with the sync latencies, selections identical);
* **the HTTP front**: the same loop through ``repro.serve.HttpFrontend``
  over a real socket, with the same JSON payloads.

Labels come from the proposal's features here (a stand-in "labeler" reusing
the oracle); a real deployment would show ``proposal["features"]`` to a
human or a model and post whatever comes back.

Run with:

    PYTHONPATH=src python examples/serving_client.py
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import tempfile
import time

from repro import ApproxFIRAL, RelaxConfig, RoundConfig, build_problem
from repro.baselines import EntropyStrategy, FIRALStrategy
from repro.serve import (
    AsyncSessionClient,
    HttpFrontend,
    ServeConfig,
    SessionManager,
    SessionSpec,
)

ROUNDS = 3
BUDGET = 10


def make_firal() -> FIRALStrategy:
    return FIRALStrategy(
        ApproxFIRAL(RelaxConfig(max_iterations=10, seed=0), RoundConfig())
    )


def make_spec(problem, strategy_factory, seed) -> SessionSpec:
    return SessionSpec(
        problem=problem,
        strategy_factory=strategy_factory,
        budget_per_round=BUDGET,
        num_rounds=ROUNDS,
        seed=seed,
    )


def oracle_labeler(problem):
    """Stand-in labeler: answers a proposal with the oracle's labels."""

    def label(proposal: dict):
        # Pool point global ids are initial_size + original pool row.
        rows = [gid - problem.initial_size for gid in proposal["global_ids"]]
        return [int(problem.pool_labels[r]) for r in rows]

    return label


async def run_rounds(client: AsyncSessionClient, session_id: str, labeler, rounds=ROUNDS):
    for _ in range(rounds):
        proposal = await client.propose(session_id)
        record = await client.observe(session_id, labels=labeler(proposal))
        print(
            f"  [{session_id}] round {proposal['round_index']}: "
            f"{record['num_labeled']:.0f} labeled, "
            f"eval acc {record['eval_accuracy']:.4f}"
        )


async def timed_rounds(client: AsyncSessionClient, session_id: str, labeler, think_time):
    """Rounds with a thinking labeler; returns per-round propose latency."""

    latencies, selections = [], []
    for _ in range(ROUNDS):
        await asyncio.sleep(think_time)  # the labeler reviews, the service works
        tick = time.perf_counter()
        proposal = await client.propose(session_id)
        latencies.append(time.perf_counter() - tick)
        selections.extend(proposal["global_ids"])
        await client.observe(session_id, labels=labeler(proposal))
    return latencies, selections


async def main() -> None:
    problem = build_problem("cifar10", scale=0.05, seed=0)
    print(problem.summary())
    labeler = oracle_labeler(problem)
    checkpoint_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-serve-"))

    config = ServeConfig(
        max_sessions=8,
        max_workers=2,
        batch_window_seconds=0.002,   # coalesce bursty dispatches
        checkpoint_dir=checkpoint_dir,
        restore_on_open=True,
    )

    print("\n== two tenants, interleaved through one service ==")
    manager = SessionManager(config)
    client = AsyncSessionClient(manager)
    await client.open("firal", make_spec(problem, make_firal, seed=0))
    await client.open("entropy", make_spec(problem, EntropyStrategy, seed=1))
    await asyncio.gather(
        run_rounds(client, "firal", labeler),
        run_rounds(client, "entropy", labeler),
    )
    print(f"  service stats: {manager.stats}")

    print("\n== crash with an open proposal, then recover ==")
    await client.open("fragile", make_spec(problem, make_firal, seed=2))
    await client.propose("fragile")          # the labeler goes dark...
    await manager.aclose()                   # ...and the service dies

    manager = SessionManager(config)         # restart
    client = AsyncSessionClient(manager)
    info = await client.open("fragile", make_spec(problem, make_firal, seed=2))
    discarded = info["invalidated_proposal"]
    print(
        f"  restored at round {info['round_index']}; invalidated proposal "
        f"for round {discarded['round_index']} ({len(discarded['global_ids'])} points)"
    )
    await run_rounds(client, "fragile", labeler)  # re-propose replays the round
    await manager.aclose()

    print("\n== eager pipelining: think-time hides selection latency ==")
    manager = SessionManager(ServeConfig(max_sessions=8, max_workers=2))
    client = AsyncSessionClient(manager)
    think_time = 0.6  # a (fast) labeler reviewing between batches
    await client.open("sync-labeler", make_spec(problem, make_firal, seed=4))
    sync_lat, sync_sel = await timed_rounds(client, "sync-labeler", labeler, think_time)
    await client.open(
        "eager-labeler", make_spec(problem, make_firal, seed=4), pipeline="eager"
    )
    eager_lat, eager_sel = await timed_rounds(client, "eager-labeler", labeler, think_time)
    assert eager_sel == sync_sel, "eager mode must select identically"
    for round_index, (sync_ms, eager_ms) in enumerate(zip(sync_lat, eager_lat)):
        print(
            f"  round {round_index}: propose latency sync {sync_ms * 1e3:7.1f}ms"
            f"  eager {eager_ms * 1e3:6.1f}ms"
        )
    print(
        f"  identical selections, {manager.stats['eager_hits']}/{ROUNDS} eager hits — "
        "the labeler's think-time paid for the selection"
    )
    await manager.aclose(checkpoint=False)

    print("\n== the same loop over the HTTP front ==")
    manager = SessionManager(ServeConfig(max_sessions=8, max_workers=2))
    front = HttpFrontend(manager, specs={"firal": make_spec(problem, make_firal, seed=3)})
    host, port = await front.start()
    print(f"  listening on {host}:{port}")

    async def post(path, body):
        reader, writer = await asyncio.open_connection(host, port)
        payload = json.dumps(body).encode()
        writer.write(
            f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n".encode() + payload
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        return json.loads(raw.split(b"\r\n\r\n", 1)[1])

    await post("/sessions/wire/open", {"spec": "firal"})
    for _ in range(ROUNDS):
        proposal = await post("/sessions/wire/propose", {})
        record = await post("/sessions/wire/observe", {"labels": labeler(proposal)})
        print(
            f"  [wire] round {proposal['round_index']}: "
            f"eval acc {record['eval_accuracy']:.4f}"
        )
    await post("/sessions/wire/close", {"checkpoint": False})
    await front.stop()
    await manager.aclose(checkpoint=False)


if __name__ == "__main__":
    asyncio.run(main())
