"""Survive rank deaths and crashes in a distributed active-learning run.

Demonstrates the three layers of the fault-tolerance story:

* **deterministic fault injection** — a ``FaultPlan`` kills a chosen rank at
  a chosen collective call, reproducibly, on either transport;
* **in-session recovery** — ``SessionConfig(on_rank_failure=
  "repartition_retry")`` re-partitions the pool over the surviving ranks and
  re-runs the failed round; selections are bit-identical to a clean run;
* **crash-safe checkpointing** — ``checkpoint_every`` writes an atomic JSON
  snapshot each round, and ``ActiveSession.resume`` continues bit-identically
  after a simulated hard crash.

Run with:

    PYTHONPATH=src python examples/fault_tolerant_session.py
"""

from __future__ import annotations

import pathlib
import tempfile

import numpy as np

from repro import ApproxFIRAL, RelaxConfig, RoundConfig, build_problem
from repro.baselines import FIRALStrategy
from repro.engine import ActiveSession, SessionConfig
from repro.parallel import FaultPlan

ROUNDS = 4
BUDGET = 10


def make_strategy() -> FIRALStrategy:
    # track_objective="none" matches the distributed RELAX solver's
    # fixed-iteration schedule, so serial and recovered runs are comparable.
    return FIRALStrategy(
        ApproxFIRAL(
            RelaxConfig(max_iterations=15, seed=0, track_objective="none"),
            RoundConfig(eta=1.0),
        )
    )


def main() -> None:
    problem = build_problem("cifar10", scale=0.05, seed=0)
    print(problem.summary())

    # ------------------------------------------------------------------ #
    # 1. A clean serial run: the reference selections.
    # ------------------------------------------------------------------ #
    reference = ActiveSession(
        problem, make_strategy(), budget_per_round=BUDGET, num_rounds=ROUNDS, seed=0
    )
    reference.run()

    # ------------------------------------------------------------------ #
    # 2. A 2-rank run that loses its last rank mid-selection of round 1.
    #    The plan pins the *last* rank: once recovery retires it, the
    #    re-run's smaller communicator makes the plan inert.
    # ------------------------------------------------------------------ #
    plan = FaultPlan(rank=1, at_call=2, mode="kill", collective="allreduce")
    strategy = make_strategy()
    session = ActiveSession(
        problem,
        strategy,
        budget_per_round=BUDGET,
        num_rounds=ROUNDS,
        seed=0,
        config=SessionConfig(
            parallel_ranks=2,
            on_rank_failure="repartition_retry",
            fault_plan=plan,
        ),
    )
    session.run()
    for event in strategy.recovery_events:
        print(
            f"recovered: rank {event['failed_rank']} died in "
            f"{event['collective']} during round {event['round_index']}; "
            f"re-ran on {event['retry_ranks']} rank(s)"
        )
    identical = bool(
        np.array_equal(reference.store.labeled_ids, session.store.labeled_ids)
    )
    print(f"selections identical to the clean serial run: {identical}")

    # ------------------------------------------------------------------ #
    # 3. Crash-safe checkpointing: checkpoint every round, "crash" after
    #    round 2, resume from the file, finish — same curve as either run.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = pathlib.Path(tmp) / "session.json"
        config = SessionConfig(checkpoint_every=1, checkpoint_path=ckpt)
        crashing = ActiveSession(
            problem,
            make_strategy(),
            budget_per_round=BUDGET,
            num_rounds=ROUNDS,
            seed=0,
            config=config,
        )
        crashing.run(2)  # checkpoints itself after each round, then "crashes"
        del crashing

        resumed = ActiveSession.resume(ckpt, problem, make_strategy(), config=config)
        print(
            f"resumed from round {resumed.round_index} "
            f"({ckpt.stat().st_size} byte checkpoint)"
        )
        resumed.run(ROUNDS - resumed.round_index, record_initial=False)

    final = resumed.result.records[-1]
    reference_final = reference.result.records[-1]
    print(
        f"final eval accuracy: resumed {final.eval_accuracy:.4f} "
        f"vs uninterrupted {reference_final.eval_accuracy:.4f}"
    )
    curves_identical = bool(
        np.array_equal(resumed.result.eval_accuracy(), reference.result.eval_accuracy())
        and np.array_equal(resumed.result.num_labeled(), reference.result.num_labeled())
    )
    print(f"curves identical: {curves_identical}")


if __name__ == "__main__":
    main()
