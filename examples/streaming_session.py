"""Active learning over a pool replenished between rounds.

The paper's protocol selects from one fixed pool, but production feeds are
streams: new unlabeled points arrive while the labeling loop runs.  The
session engine expresses this with a :class:`repro.engine.StreamingPointStore`
— a pool store whose master array grows between rounds:

* ``SessionConfig(store=StreamingPointStore.from_problem)`` makes the
  session's pool growable;
* ``session.extend_pool(features, labels)`` appends a replenishment batch at
  a round boundary under fresh stable ids (the labels stay hidden until the
  oracle reveals them);
* ids assigned earlier never move, so the recorded curve, the labeled
  history and FIRAL's cross-round state all remain valid — the RELAX warm
  start simply falls back to a cold start on the first round whose pool
  contains points the previous solve never weighted.

Strategies and solvers are untouched: FIRAL below runs exactly the code it
runs on a dense pool.

Run with:

    PYTHONPATH=src python examples/streaming_session.py
"""

from __future__ import annotations

import numpy as np

from repro import ApproxFIRAL, RelaxConfig, RoundConfig, build_problem
from repro.baselines import FIRALStrategy
from repro.engine import ActiveSession, SessionConfig, StreamingPointStore


def main() -> None:
    problem = build_problem("cifar10", scale=0.05, seed=0)
    print(problem.summary())

    # Stand-in for the production feed: draws fresh points of the same
    # distribution each round (here, resampled from a bigger problem draw).
    feed = build_problem("cifar10", scale=0.05, seed=1)
    feed_cursor = 0

    strategy = FIRALStrategy(
        ApproxFIRAL(RelaxConfig(max_iterations=15, seed=0), RoundConfig(eta=1.0))
    )
    session = ActiveSession(
        problem,
        strategy,
        budget_per_round=10,
        seed=0,
        config=SessionConfig(store=StreamingPointStore.from_problem, reuse_eta=True),
    )
    session.record_initial()

    replenish_per_round = 25
    for round_index in range(4):
        if round_index > 0:
            # Round boundary: the feed delivered new unlabeled points.
            new_f = feed.pool_features[feed_cursor : feed_cursor + replenish_per_round]
            new_y = feed.pool_labels[feed_cursor : feed_cursor + replenish_per_round]
            feed_cursor += replenish_per_round
            new_ids = session.extend_pool(new_f, new_y)
            print(f"  replenished {new_ids.size} points (ids {new_ids[0]}..{new_ids[-1]})")
        record = session.step()
        picked = session.store.labeled_ids[-session.budget_per_round :]
        from_stream = int(np.sum(picked >= problem.initial_size + problem.pool_size))
        print(
            f"round {round_index + 1}: pool={session.pool_size:4d} "
            f"labels={record.num_labeled:3d} eval_acc={record.eval_accuracy:.4f} "
            f"({from_stream}/{session.budget_per_round} picks from the stream)"
        )

    print("\nfinal curve:")
    print(session.result.to_table())


if __name__ == "__main__":
    main()
