#!/usr/bin/env python
"""Quickstart: run Approx-FIRAL active learning on a CIFAR-10-like problem.

This mirrors the paper's basic workflow (§ IV-A):

1. build a feature-embedding dataset (synthetic stand-in for SimCLR CIFAR-10
   features, 10 classes, 20 dimensions),
2. start from one labeled point per class,
3. run three rounds of active learning with a budget of 10 points per round,
4. report pool / evaluation accuracy after every round.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ApproxFIRAL, RelaxConfig, RoundConfig, build_problem, run_active_learning
from repro.baselines import FIRALStrategy, RandomStrategy


def main() -> None:
    # A scaled-down CIFAR-10 row of Table V (scale=0.2 keeps 600 pool points).
    problem = build_problem("cifar10", scale=0.2, seed=0)
    print("Problem:", problem.summary())

    # Approx-FIRAL with the paper's default hyperparameters (10 Rademacher
    # probes, CG tolerance 0.1, mirror-descent tolerance 1e-4).  The FTRL
    # learning rate eta is grid-searched automatically when left unset.
    firal = FIRALStrategy(
        ApproxFIRAL(
            RelaxConfig(max_iterations=30, track_objective="none", seed=0),
            RoundConfig(eta=1.0),
        )
    )
    result = run_active_learning(problem, firal, num_rounds=3, budget_per_round=10, seed=0)
    print()
    print(result.to_table())

    # Compare against random selection with the same budget.
    random_result = run_active_learning(
        problem, RandomStrategy(), num_rounds=3, budget_per_round=10, seed=0
    )
    print()
    print(random_result.to_table())

    print()
    print(
        f"Final evaluation accuracy — Approx-FIRAL: {result.final_eval_accuracy():.3f}, "
        f"Random: {random_result.final_eval_accuracy():.3f}"
    )


if __name__ == "__main__":
    main()
